//! `serve`, `client`, `top`, and `bench serving` subcommands.
//!
//! `serve` turns the CLI into a long-running concurrent query server on
//! the wire protocol from [`aqp::serving`]; `client` is the matching
//! cooperative client (bounded retry with backoff on shed); `top` is a
//! live terminal view over the server's `stats` verb (per-class SLO
//! windows); `bench serving` measures end-to-end serving latency and
//! overload behaviour against an in-process server and writes
//! `BENCH_serving.json` (including per-stage timeline medians pulled
//! from the flight recorder over the `dump` verb).

use crate::args::Args;
use crate::commands::{
    at_path, boxed, open_family, opt_usize, threads_arg, write_metrics_snapshot, CliError,
};
use aqp::obs::json::Value;
use aqp::obs::SloConfig;
use aqp::prelude::*;
use aqp::serving::{
    AdmissionConfig, CacheConfig, Client, ClassLimits, ClientError, ContractClass, Request,
    Response, RetryPolicy, Server, ServerConfig, ShadowConfig, WireAnswer,
};
use aqp::storage::read_table_file;
use std::io::Write;
use std::time::{Duration, Instant};

/// `serve` — run the concurrent query server until SIGTERM/SIGINT (or a
/// `shutdown` request) drains it.
pub fn serve_command(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let family = args.required("family")?;
    let view_path = args.optional("view");
    let addr = args.optional("addr").unwrap_or_else(|| "127.0.0.1:7878".to_owned());
    let threads = threads_arg(args)?;
    let confidence = args.get_or("confidence", 0.95f64)?;
    let row_budget = opt_usize(args, "row-budget")?;
    let default_deadline = opt_usize(args, "default-deadline-ms")?;
    let fixed_rate = args.optional("fixed-rate").map(|v| {
        v.parse::<f64>()
            .map_err(|_| CliError(format!("invalid value {v:?} for --fixed-rate")))
    });
    let drain_ms = args.get_or("drain-timeout-ms", 10_000u64)?;
    let metrics_out = args.optional("metrics-out");
    // Semantic answer cache: --cache-capacity 0 (or AQP_CACHE=off in the
    // environment) disables it; --cache-ttl-ms 0 means no TTL.
    let cache_capacity = args.get_or("cache-capacity", 256usize)?;
    let cache_ttl_ms = args.get_or("cache-ttl-ms", 0u64)?;
    // Observability: flight-recorder ring size and anomaly-dump path,
    // shadow-audit sampling, SLO watchdog thresholds.
    let flight_cap =
        args.get_or("flight-recorder-cap", aqp::obs::flight::DEFAULT_FLIGHT_CAPACITY)?;
    let flight_dump = args.optional("flight-dump");
    let shadow_rate = args.get_or("shadow-rate", 0.0f64)?;
    let shadow_seed = args.get_or("shadow-seed", 0x5eed_5eed_u64)?;
    let slo_availability = args.get_or("slo-availability", 0.99f64)?;
    let slo_p99_ms = opt_usize(args, "slo-p99-ms")?;
    let slo_min_requests = args.get_or("slo-min-requests", 10u64)?;
    let admission = AdmissionConfig {
        interactive: ClassLimits {
            max_inflight: args.get_or("interactive-inflight", 4usize)?.max(1),
            max_queue: args.get_or("interactive-queue", 8usize)?,
        },
        batch: ClassLimits {
            max_inflight: args.get_or("batch-inflight", 2usize)?.max(1),
            max_queue: args.get_or("batch-queue", 2usize)?,
        },
    };
    args.finish()?;

    let mut system = open_family(&family, out)?.with_threads(threads);
    if let Some(p) = view_path {
        let view = read_table_file(&p).map_err(at_path(&p))?;
        system = system.with_view(view);
    }
    if let Some(budget) = row_budget {
        system = system.with_row_budget(budget);
    }

    let config = ServerConfig {
        addr,
        admission,
        default_deadline: default_deadline.map(|ms| Duration::from_millis(ms as u64)),
        default_confidence: confidence,
        fixed_rows_per_ms: fixed_rate.transpose()?,
        drain_timeout: Duration::from_millis(drain_ms),
        cache: CacheConfig {
            capacity: cache_capacity,
            ttl: (cache_ttl_ms > 0).then(|| Duration::from_millis(cache_ttl_ms)),
            enabled: cache_capacity > 0,
        },
        metrics_out: metrics_out.map(Into::into),
        install_signal_handlers: true,
        flight_recorder_cap: flight_cap,
        flight_dump: flight_dump.map(Into::into),
        shadow: ShadowConfig {
            rate: shadow_rate.clamp(0.0, 1.0),
            seed: shadow_seed,
            ..ShadowConfig::default()
        },
        slo: SloConfig {
            availability_target: slo_availability,
            p99_limit: slo_p99_ms.map(|ms| Duration::from_millis(ms as u64)),
            min_requests: slo_min_requests,
        },
    };
    let shadow_on = config.shadow.rate > 0.0;
    let server = Server::bind(system, config).map_err(boxed)?;
    writeln!(
        out,
        "serving on {} (interactive {}x{}, batch {}x{}, flight ring {flight_cap}{}); SIGTERM or a shutdown request drains",
        server.local_addr().map_err(boxed)?,
        admission.interactive.max_inflight,
        admission.interactive.max_queue,
        admission.batch.max_inflight,
        admission.batch.max_queue,
        if shadow_on {
            format!(", shadow audit {:.0}%", shadow_rate.clamp(0.0, 1.0) * 100.0)
        } else {
            String::new()
        },
    )?;
    out.flush()?;
    let report = server.run().map_err(boxed)?;
    writeln!(
        out,
        "drained: {} requests ({} answered, {} shed, {} timeouts, {} draining rejects, {} errors) over {} connections; cache {} hits / {} misses / {} bypass",
        report.requests,
        report.answered,
        report.shed,
        report.timeouts,
        report.drained_rejects,
        report.errors,
        report.connections,
        report.cache_hits,
        report.cache_misses,
        report.cache_bypass,
    )?;
    Ok(())
}

/// `client` — send one request (`ping`, `metrics`, `stats`, `dump`,
/// `shutdown`, `invalidate`, or SQL) to a running server and print the
/// response.
pub fn client_command(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let addr = args.optional("addr").unwrap_or_else(|| "127.0.0.1:7878".to_owned());
    let class = ContractClass::parse(&args.optional("class").unwrap_or_default());
    let deadline_ms = opt_usize(args, "deadline-ms")?.map(|n| n as u64);
    let row_budget = opt_usize(args, "row-budget")?;
    let trace_id = args.optional("trace-id");
    let stats = args.flag("stats");
    let confidence = args
        .optional("confidence")
        .map(|v| {
            v.parse::<f64>()
                .map_err(|_| CliError(format!("invalid value {v:?} for --confidence")))
        })
        .transpose()?;
    let max_rel_error = args
        .optional("max-rel-error")
        .map(|v| {
            v.parse::<f64>()
                .map_err(|_| CliError(format!("invalid value {v:?} for --max-rel-error")))
        })
        .transpose()?;
    let attempts = args.get_or("attempts", 4u32)?.max(1);
    let seed = args.get_or("seed", 0x5eed_u64)?;
    let body = args.positionals()[1..].join(" ");
    args.finish()?;
    if body.is_empty() {
        return Err(CliError(
            "client needs a request: ping | metrics | stats | dump | shutdown | invalidate | SQL"
                .into(),
        ));
    }

    let request = match body.as_str() {
        "ping" => Request::Ping,
        "metrics" => Request::Metrics,
        "stats" => Request::Stats,
        "dump" => Request::Dump,
        "shutdown" => Request::Shutdown,
        "invalidate" => Request::Invalidate,
        sql => Request::Query {
            sql: sql.to_owned(),
            class,
            deadline_ms,
            row_budget,
            confidence,
            max_rel_error,
            trace_id,
        },
    };
    let policy = RetryPolicy { max_attempts: attempts, ..RetryPolicy::with_seed(seed) };
    let mut client = Client::new(addr, policy);
    let t0 = Instant::now();
    let outcome = match client.request(&request) {
        Ok(Response::Answer(answer)) => print_wire_answer(&answer, out),
        Ok(Response::Pong) => writeln!(out, "pong ({:?})", t0.elapsed()).map_err(boxed),
        Ok(Response::Metrics(text)) => write!(out, "{text}").map_err(boxed),
        Ok(Response::Stats(text)) => writeln!(out, "{text}").map_err(boxed),
        Ok(Response::Dump(text)) => write!(out, "{text}").map_err(boxed),
        Ok(Response::ShuttingDown) => writeln!(out, "server is shutting down").map_err(boxed),
        Ok(Response::Invalidated { epoch }) => {
            writeln!(out, "cache invalidated (epoch {epoch})").map_err(boxed)
        }
        Ok(Response::Draining) => {
            Err(CliError("server is draining; request not accepted".into()))
        }
        Ok(Response::Timeout { message, trace_id }) => Err(CliError(trace_note(
            format!("timeout: {message}"),
            &trace_id,
        ))),
        Ok(Response::Error { message, trace_id }) => Err(CliError(trace_note(
            format!("server: {message}"),
            &trace_id,
        ))),
        Ok(Response::Shed { retry_after_ms, .. }) => Err(CliError(format!(
            "shed (unretried); server suggests retrying in {retry_after_ms} ms"
        ))),
        Err(e @ ClientError::Shed { .. }) => Err(CliError(e.to_string())),
        Err(e) => Err(CliError(e.to_string())),
    };
    if stats {
        writeln!(out, "client: {}", client.stats().summary())?;
    }
    outcome
}

/// Append a `(trace <id>)` suffix when the server attached a trace id.
fn trace_note(message: String, trace_id: &str) -> String {
    if trace_id.is_empty() {
        message
    } else {
        format!("{message} (trace {trace_id})")
    }
}

/// Render a wire answer like the local `query` command renders a local
/// one: header row, group rows, then a tier/cost footer.
fn print_wire_answer(answer: &WireAnswer, out: &mut dyn Write) -> Result<(), CliError> {
    for name in &answer.group_names {
        write!(out, "{name}\t")?;
    }
    for alias in &answer.agg_aliases {
        write!(out, "{alias}\t")?;
    }
    writeln!(out)?;
    for group in &answer.groups {
        for key in &group.key {
            match key {
                aqp::obs::json::Value::Str(s) => write!(out, "{s}\t")?,
                other => write!(out, "{}\t", other.to_json())?,
            }
        }
        for v in &group.values {
            if v.exact {
                write!(out, "{:.2} (exact)\t", v.estimate)?;
            } else {
                write!(out, "{:.2} [{:.2}, {:.2}]\t", v.estimate, v.lo, v.hi)?;
            }
        }
        writeln!(out)?;
    }
    let mut notes = vec![format!("tier {}", answer.tier)];
    if answer.cache_hit {
        notes.push("cache-hit".into());
    }
    if answer.partial {
        notes.push("partial".into());
    }
    if answer.deadline_limited {
        notes.push("deadline-limited".into());
    }
    if let Some(b) = answer.effective_budget {
        notes.push(format!("budget {b}"));
    }
    if !answer.trace_id.is_empty() {
        notes.push(format!("trace {}", answer.trace_id));
    }
    writeln!(
        out,
        "-- {} | {} rows scanned | server {:.1} ms",
        notes.join(", "),
        answer.rows_scanned,
        answer.elapsed_ms
    )?;
    Ok(())
}

/// Median wall time per timeline stage across a flight-recorder JSONL
/// dump, answered requests only, in first-seen stage order.
fn stage_medians(jsonl: &str) -> Vec<(String, f64)> {
    let mut by_stage: Vec<(String, Vec<u64>)> = Vec::new();
    for line in jsonl.lines() {
        let Ok(record) = aqp::obs::RequestRecord::from_json(line) else { continue };
        if record.outcome != "answer" {
            continue;
        }
        for stage in &record.stages {
            match by_stage.iter_mut().find(|(n, _)| *n == stage.name) {
                Some((_, v)) => v.push(stage.micros),
                None => by_stage.push((stage.name.clone(), vec![stage.micros])),
            }
        }
    }
    by_stage
        .into_iter()
        .map(|(name, mut v)| {
            v.sort_unstable();
            (name, v[v.len() / 2] as f64)
        })
        .collect()
}

/// `top` — poll a running server's `stats` verb and render the SLO
/// windows as a live table. `--iterations 0` polls until interrupted.
pub fn top_command(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let addr = args.optional("addr").unwrap_or_else(|| "127.0.0.1:7878".to_owned());
    let interval_ms = args.get_or("interval-ms", 1000u64)?;
    let iterations = args.get_or("iterations", 0usize)?;
    args.finish()?;

    let mut client = Client::new(addr.clone(), RetryPolicy::no_retry());
    let mut polls = 0usize;
    loop {
        match client.request(&Request::Stats) {
            Ok(Response::Stats(text)) => render_top(&text, &addr, out)?,
            Ok(Response::Draining) | Ok(Response::ShuttingDown) => {
                writeln!(out, "server is draining")?;
                return Ok(());
            }
            Ok(other) => {
                return Err(CliError(format!("unexpected response to stats: {other:?}")))
            }
            Err(e) => return Err(CliError(format!("stats poll failed: {e}"))),
        }
        out.flush()?;
        polls += 1;
        if iterations > 0 && polls >= iterations {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(interval_ms.max(100)));
    }
}

/// Render one `stats` payload as the `top` table.
fn render_top(text: &str, addr: &str, out: &mut dyn Write) -> Result<(), CliError> {
    let v = aqp::obs::json::parse(text)
        .map_err(|e| CliError(format!("malformed stats payload: {e}")))?;
    let tallies = v.get("tallies");
    let field = |k: &str| {
        tallies
            .and_then(|t| t.get(k))
            .and_then(Value::as_u64)
            .unwrap_or(0)
    };
    writeln!(
        out,
        "aqp top — {addr} | requests {} answered {} shed {} timeouts {} errors {} cache-hits {} connections {} | flight {} records",
        field("requests"),
        field("answered"),
        field("shed"),
        field("timeouts"),
        field("errors"),
        field("cache_hits"),
        field("connections"),
        v.get("flight_records").and_then(Value::as_u64).unwrap_or(0),
    )?;
    writeln!(
        out,
        "{:<12} {:<4} {:>8} {:>7} {:>6} {:>6} {:>6} {:>9} {:>9} {:>9}",
        "class", "win", "reqs", "avail%", "shed%", "tmo%", "hit%", "p50ms", "p95ms", "p99ms"
    )?;
    let pct = |w: &Value, k: &str| w.get(k).and_then(Value::as_f64).unwrap_or(0.0) * 100.0;
    for class in v.get("classes").and_then(Value::as_arr).unwrap_or(&[]) {
        let label = class.get("class").and_then(Value::as_str).unwrap_or("?");
        let breach = class.get("in_breach").and_then(Value::as_bool).unwrap_or(false);
        for w in class.get("windows").and_then(Value::as_arr).unwrap_or(&[]) {
            writeln!(
                out,
                "{:<12} {:<4} {:>8} {:>7.1} {:>6.1} {:>6.1} {:>6.1} {:>9.2} {:>9.2} {:>9.2}{}",
                label,
                w.get("window").and_then(Value::as_str).unwrap_or("?"),
                w.get("requests").and_then(Value::as_u64).unwrap_or(0),
                pct(w, "availability"),
                pct(w, "shed_rate"),
                pct(w, "timeout_rate"),
                pct(w, "cache_hit_rate"),
                w.get("p50_ms").and_then(Value::as_f64).unwrap_or(0.0),
                w.get("p95_ms").and_then(Value::as_f64).unwrap_or(0.0),
                w.get("p99_ms").and_then(Value::as_f64).unwrap_or(0.0),
                if breach { "  << BREACH" } else { "" },
            )?;
        }
    }
    Ok(())
}

/// Latency percentile from a sorted sample (nearest-rank).
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ms.len() as f64).ceil().max(1.0) as usize;
    sorted_ms[rank.min(sorted_ms.len()) - 1]
}

/// `bench serving` — end-to-end serving benchmark against an in-process
/// server: latency quantiles and throughput at 1/4/16 concurrent
/// clients, then shed behaviour at 2x admission overload. Writes
/// `BENCH_serving.json`.
pub fn bench_serving_command(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let rows = args.get_or("rows", 100_000usize)?;
    let per_client = args.get_or("requests", 20usize)?.max(1);
    let threads = threads_arg(args)?;
    let stats = args.flag("stats");
    let out_path = args
        .optional("out")
        .unwrap_or_else(|| "BENCH_serving.json".to_owned());
    args.finish()?;

    let star = gen_sales(&SalesConfig { fact_rows: rows, zipf_z: 1.5, seed: 42 }).map_err(boxed)?;
    let view = star.denormalize("bench_view").map_err(boxed)?;
    writeln!(out, "bench serving: sales view {} rows, {} executor threads", view.num_rows(), threads)?;
    let sql = "SELECT store.region, COUNT(*) AS cnt, SUM(sales.revenue) AS rev \
               FROM v GROUP BY store.region";

    // Latency/throughput phase: admission opened wide so concurrency,
    // not shedding, is what's being measured — and the cache disabled,
    // so every request pays for a real scan (the cache gets its own
    // phase below).
    let mut level_rows = Vec::new();
    let mut stage_dump = String::new();
    for &clients in &[1usize, 4, 16] {
        let system = ResilientSystem::exact_only(view.clone()).with_threads(threads);
        let config = ServerConfig {
            admission: AdmissionConfig {
                interactive: ClassLimits { max_inflight: 16, max_queue: 64 },
                batch: ClassLimits { max_inflight: 2, max_queue: 2 },
            },
            cache: CacheConfig::disabled(),
            ..ServerConfig::default()
        };
        let server = Server::bind(system, config).map_err(boxed)?;
        let addr = server.local_addr().map_err(boxed)?.to_string();
        let handle = server.shutdown_handle();
        let run = std::thread::spawn(move || server.run());

        let t0 = Instant::now();
        let mut results: Vec<(f64, String)> = std::thread::scope(|s| {
            let workers: Vec<_> = (0..clients)
                .map(|c| {
                    let addr = addr.clone();
                    s.spawn(move || {
                        let mut client =
                            Client::new(addr, RetryPolicy::with_seed(0xbe11c + c as u64));
                        let mut got = Vec::with_capacity(per_client);
                        for _ in 0..per_client {
                            let t = Instant::now();
                            if let Ok(Response::Answer(a)) = client.request(&Request::query(sql)) {
                                got.push((t.elapsed().as_secs_f64() * 1e3, a.tier));
                            }
                        }
                        got
                    })
                })
                .collect();
            workers.into_iter().flat_map(|w| w.join().unwrap_or_default()).collect()
        });
        let wall = t0.elapsed().as_secs_f64();
        // Pull the flight recorder before shutdown: the per-stage
        // timeline medians of the most recent requests at this level.
        let mut dump_client = Client::new(addr.clone(), RetryPolicy::no_retry());
        if let Ok(Response::Dump(text)) = dump_client.request(&Request::Dump) {
            stage_dump = text;
        }
        handle.shutdown();
        run.join().map_err(|_| CliError("server thread panicked".into()))?.map_err(boxed)?;

        results.sort_by(|a, b| a.0.total_cmp(&b.0));
        let latencies: Vec<f64> = results.iter().map(|(ms, _)| *ms).collect();
        let mut tier_counts: Vec<(String, usize)> = Vec::new();
        for (_, tier) in &results {
            match tier_counts.iter_mut().find(|(t, _)| t == tier) {
                Some((_, n)) => *n += 1,
                None => tier_counts.push((tier.clone(), 1)),
            }
        }
        tier_counts.sort();
        let completed = latencies.len();
        let qps = if wall > 0.0 { completed as f64 / wall } else { 0.0 };
        let (p50, p95, p99) = (
            percentile(&latencies, 50.0),
            percentile(&latencies, 95.0),
            percentile(&latencies, 99.0),
        );
        let tiers_text = tier_counts
            .iter()
            .map(|(t, n)| format!("{t} {n}"))
            .collect::<Vec<_>>()
            .join(", ");
        writeln!(
            out,
            "clients {clients}: {completed}/{} ok, {qps:.1} req/s, p50 {p50:.1} ms, p95 {p95:.1} ms, p99 {p99:.1} ms (tiers: {tiers_text})",
            clients * per_client
        )?;
        let tiers_json = tier_counts
            .iter()
            .map(|(t, n)| format!("\"{t}\": {n}"))
            .collect::<Vec<_>>()
            .join(", ");
        level_rows.push(format!(
            "    {{\"clients\": {clients}, \"requests\": {}, \"completed\": {completed}, \"throughput_rps\": {qps:.2}, \"p50_ms\": {p50:.3}, \"p95_ms\": {p95:.3}, \"p99_ms\": {p99:.3}, \"tiers\": {{{tiers_json}}}}}",
            clients * per_client
        ));
    }

    // Per-stage timeline medians over the flight-recorder dump of the
    // last (most concurrent) level: where a served request's wall time
    // actually goes (read → parse → cache → admission → execute →
    // serialize → write).
    let stages = stage_medians(&stage_dump);
    let stages_text = stages
        .iter()
        .map(|(name, us)| format!("{name} {:.0}us", us))
        .collect::<Vec<_>>()
        .join(", ");
    writeln!(out, "stage medians (answered requests): {stages_text}")?;
    let stages_json = stages
        .iter()
        .map(|(name, us)| format!("\"{name}\": {us:.1}"))
        .collect::<Vec<_>>()
        .join(", ");

    // Cache phase: one server with the semantic cache on. Cold misses
    // are forced by invalidating before each timed request (every scan
    // is real); warm hits repeat the same query against a warmed cache.
    // The probe is a dashboard-shaped query (predicate + several
    // aggregates) so the cold side measures a representative scan, not
    // the cheapest possible one; the warm side is scan-independent.
    let cache_sql = "SELECT store.region, COUNT(*) AS cnt, SUM(sales.revenue) AS rev, \
                     AVG(sales.revenue) AS avg_rev, SUM(sales.cost) AS cost, \
                     MIN(sales.revenue) AS lo, MAX(sales.revenue) AS hi \
                     FROM v WHERE sales.revenue > 10 AND sales.units >= 1 \
                     AND sales.cost >= 0 GROUP BY store.region";
    let cache_iters = per_client.max(10);
    let system = ResilientSystem::exact_only(view.clone()).with_threads(threads);
    let config = ServerConfig {
        admission: AdmissionConfig {
            interactive: ClassLimits { max_inflight: 16, max_queue: 64 },
            batch: ClassLimits { max_inflight: 2, max_queue: 2 },
        },
        ..ServerConfig::default()
    };
    let server = Server::bind(system, config).map_err(boxed)?;
    let addr = server.local_addr().map_err(boxed)?.to_string();
    let handle = server.shutdown_handle();
    let run = std::thread::spawn(move || server.run());
    let mut client = Client::new(addr, RetryPolicy::with_seed(0xcac4e));
    let mut cold_ms: Vec<f64> = Vec::with_capacity(cache_iters);
    let mut warm_ms: Vec<f64> = Vec::with_capacity(cache_iters);
    let mut hits = 0usize;
    let mut misses = 0usize;
    for _ in 0..cache_iters {
        client.request(&Request::Invalidate).map_err(boxed)?;
        let t = Instant::now();
        match client.request(&Request::query(cache_sql)) {
            Ok(Response::Answer(a)) => {
                cold_ms.push(t.elapsed().as_secs_f64() * 1e3);
                if a.cache_hit {
                    hits += 1;
                } else {
                    misses += 1;
                }
            }
            other => return Err(CliError(format!("cache bench cold request failed: {other:?}"))),
        }
    }
    // Warm the cache once, then time pure hits.
    client.request(&Request::query(cache_sql)).map_err(boxed)?;
    for _ in 0..cache_iters {
        let t = Instant::now();
        match client.request(&Request::query(cache_sql)) {
            Ok(Response::Answer(a)) => {
                warm_ms.push(t.elapsed().as_secs_f64() * 1e3);
                if a.cache_hit {
                    hits += 1;
                } else {
                    misses += 1;
                }
            }
            other => return Err(CliError(format!("cache bench warm request failed: {other:?}"))),
        }
    }
    handle.shutdown();
    run.join().map_err(|_| CliError("server thread panicked".into()))?.map_err(boxed)?;
    cold_ms.sort_by(|a, b| a.total_cmp(b));
    warm_ms.sort_by(|a, b| a.total_cmp(b));
    let cold_p50 = percentile(&cold_ms, 50.0);
    let warm_p50 = percentile(&warm_ms, 50.0);
    let speedup = if warm_p50 > 0.0 { cold_p50 / warm_p50 } else { f64::INFINITY };
    writeln!(
        out,
        "cache: cold-miss p50 {cold_p50:.2} ms, warm-hit p50 {warm_p50:.3} ms ({speedup:.0}x), {hits} hits / {misses} misses"
    )?;

    // Overload phase: 2x the admission capacity (inflight + queue) in
    // simultaneous no-retry clients; the excess must shed, everything
    // must get exactly one terminal response.
    let cap = ClassLimits { max_inflight: 2, max_queue: 2 };
    let overload_clients = 2 * (cap.max_inflight + cap.max_queue);
    let system = ResilientSystem::exact_only(view.clone()).with_threads(threads);
    let config = ServerConfig {
        admission: AdmissionConfig { interactive: cap, batch: cap },
        // Cache off: with it on, one leader would execute and everyone
        // else would hit, and shedding would never be exercised.
        cache: CacheConfig::disabled(),
        ..ServerConfig::default()
    };
    let server = Server::bind(system, config).map_err(boxed)?;
    let addr = server.local_addr().map_err(boxed)?.to_string();
    let handle = server.shutdown_handle();
    let run = std::thread::spawn(move || server.run());

    let outcomes: Vec<&'static str> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..overload_clients)
            .map(|_| {
                let addr = addr.clone();
                s.spawn(move || {
                    let mut client = Client::new(addr, RetryPolicy::no_retry());
                    match client.request(&Request::query(cache_sql)) {
                        Ok(Response::Answer(_)) => "answered",
                        Ok(Response::Timeout { .. }) => "timeout",
                        Ok(_) => "other",
                        Err(ClientError::Shed { .. }) => "shed",
                        Err(_) => "transport",
                    }
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap_or("transport")).collect()
    });
    handle.shutdown();
    run.join().map_err(|_| CliError("server thread panicked".into()))?.map_err(boxed)?;
    let count = |kind: &str| outcomes.iter().filter(|o| **o == kind).count();
    let (answered, shed) = (count("answered"), count("shed"));
    let shed_rate = shed as f64 / overload_clients as f64;
    writeln!(
        out,
        "overload 2x (cap {}+{}, {overload_clients} clients): {answered} answered, {shed} shed ({:.0}% shed rate)",
        cap.max_inflight,
        cap.max_queue,
        shed_rate * 100.0
    )?;

    let finite_speedup = if speedup.is_finite() { speedup } else { 0.0 };
    let json = format!(
        "{{\n  \"dataset\": {{\"kind\": \"sales\", \"rows\": {}, \"zipf_z\": 1.5, \"seed\": 42}},\n  \"executor_threads\": {threads},\n  \"requests_per_client\": {per_client},\n  \"levels\": [\n{}\n  ],\n  \"stage_medians_us\": {{{stages_json}}},\n  \"cache\": {{\"iterations\": {cache_iters}, \"cold_miss_p50_ms\": {cold_p50:.3}, \"warm_hit_p50_ms\": {warm_p50:.4}, \"speedup\": {finite_speedup:.1}, \"hits\": {hits}, \"misses\": {misses}}},\n  \"overload\": {{\"capacity\": {}, \"clients\": {overload_clients}, \"answered\": {answered}, \"shed\": {shed}, \"shed_rate\": {shed_rate:.3}}}\n}}\n",
        view.num_rows(),
        level_rows.join(",\n"),
        cap.max_inflight + cap.max_queue,
    );
    std::fs::write(&out_path, json).map_err(at_path(&out_path))?;
    writeln!(out, "wrote {out_path}")?;
    if stats {
        write_metrics_snapshot(out)?;
    }
    Ok(())
}
