//! `aqp-cli` binary entry point.

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match aqp_cli::Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = aqp_cli::run(args, &mut stdout) {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
