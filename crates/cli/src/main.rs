//! `aqp-cli` binary entry point.

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match aqp_cli::Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            // Structured event alongside the (byte-identical) stderr line.
            aqp::obs::event::error("cli", "argument parse failed", &[("error", &e.to_string())]);
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = aqp_cli::run(args, &mut stdout) {
        aqp::obs::event::error("cli", "command failed", &[("error", &e.to_string())]);
        eprintln!("{e}");
        std::process::exit(1);
    }
}
