//! CLI subcommands.

use crate::args::Args;
use aqp::prelude::*;
use aqp::storage::{read_csv_file, read_table_file, write_csv_file, write_table_file};
use std::fmt;
use std::io::{BufRead, Write};
use std::time::Instant;

/// Top-level CLI error.
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl From<crate::args::ArgError> for CliError {
    fn from(e: crate::args::ArgError) -> Self {
        CliError(e.to_string())
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(e.to_string())
    }
}

impl From<aqp::storage::StorageError> for CliError {
    fn from(e: aqp::storage::StorageError) -> Self {
        CliError(e.to_string())
    }
}

impl From<AqpError> for CliError {
    fn from(e: AqpError) -> Self {
        CliError(e.to_string())
    }
}

pub(crate) fn boxed<E: std::fmt::Display>(e: E) -> CliError {
    CliError(e.to_string())
}

/// Add the offending path to a load/save error so the user knows which
/// file to look at.
pub(crate) fn at_path<E: std::fmt::Display>(path: &str) -> impl Fn(E) -> CliError + '_ {
    move |e| CliError(format!("{path}: {e}"))
}

pub(crate) fn opt_usize(args: &Args, name: &str) -> Result<Option<usize>, CliError> {
    match args.optional(name) {
        None => Ok(None),
        Some(v) => v
            .parse::<usize>()
            .map(Some)
            .map_err(|_| CliError(format!("invalid value {v:?} for --{name}"))),
    }
}

/// `--threads N`, defaulting to the machine's available parallelism.
/// Zero is clamped to one so a bad value can never disable execution.
pub(crate) fn threads_arg(args: &Args) -> Result<usize, CliError> {
    Ok(opt_usize(args, "threads")?
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
        .max(1))
}

/// Usage text.
pub const USAGE: &str = "\
aqp-cli — dynamic sample selection for approximate query processing

USAGE:
  aqp-cli generate tpch  [--scale F] [--skew F] [--seed N] --out FILE
  aqp-cli generate sales [--rows N] [--skew F] [--seed N] --out FILE
  aqp-cli import --csv FILE [--name NAME] --out FILE
  aqp-cli export --view FILE --out FILE.csv
  aqp-cli preprocess --view FILE [--rate F] [--gamma F] [--tau N] [--seed N]
                     [--outlier-column COL] --out FILE
  aqp-cli catalog --family FILE
  aqp-cli query --family FILE [--view FILE] [--exact] [--confidence F]
                [--row-budget N] [--threads N] [--trace] [--stats] SQL
  aqp-cli explain --family FILE [--view FILE] [--analyze] [--confidence F]
                  [--row-budget N] [--threads N] SQL
  aqp-cli repl --family FILE [--view FILE] [--row-budget N] [--threads N]
               [--trace] [--stats]
  aqp-cli workload --family FILE --view FILE [--queries N] [--grouping N]
                   [--seed N] [--confidence F] [--row-budget N] [--threads N]
                   [--trace] [--stats] [--calibrate] [--obs-out PREFIX]
  aqp-cli bench [--scale F] [--skew F] [--seed N] [--rate F] [--gamma F]
                [--iters N] [--out FILE] [--stats]
  aqp-cli bench kernels [--scale F] [--skew F] [--seed N] [--iters N]
                        [--min-speedup F] [--out FILE]
  aqp-cli bench pruning [--rows N] [--iters N] [--min-speedup F]
                        [--out FILE] [--stats]
  aqp-cli bench serving [--rows N] [--requests N] [--threads N] [--out FILE]
  aqp-cli serve --family FILE [--view FILE] [--addr HOST:PORT] [--threads N]
                [--confidence F] [--row-budget N] [--default-deadline-ms N]
                [--fixed-rate F] [--drain-timeout-ms N] [--metrics-out FILE]
                [--interactive-inflight N] [--interactive-queue N]
                [--batch-inflight N] [--batch-queue N]
                [--cache-capacity N] [--cache-ttl-ms N]
                [--flight-recorder-cap N] [--flight-dump FILE]
                [--shadow-rate F] [--shadow-seed N]
                [--slo-availability F] [--slo-p99-ms N] [--slo-min-requests N]
  aqp-cli client [--addr HOST:PORT] [--class interactive|batch]
                 [--deadline-ms N] [--row-budget N] [--confidence F]
                 [--max-rel-error F] [--attempts N] [--seed N]
                 [--trace-id ID] [--stats]
                 (SQL | ping | metrics | stats | dump | shutdown | invalidate)
  aqp-cli top [--addr HOST:PORT] [--interval-ms N] [--iterations N]
  aqp-cli dashboard PREFIX
  aqp-cli validate-trace FILE

Views are stored as .aqpt binary tables; sample families as .aqps files.
In SQL the FROM clause names are ignored — queries always run against the
loaded family/view.

query/repl/workload serve through the degradation ladder: a missing or
corrupt sample family is salvaged or bypassed (warning printed) and each
answer is tagged with the tier that served it; --row-budget caps the rows
any single query may scan. --threads sets the morsel-driven execution
parallelism (default: available hardware parallelism); answers are
bit-identical at any thread count.

--trace prints one JSON QueryTrace line per query (plan, sample tables
consulted, serving tier, rows scanned, per-stage wall time); for
workload it also writes PREFIX_traces.jsonl, PREFIX_metrics.prom and
PREFIX_report.json (default PREFIX: OBS). --stats prints a Prometheus
text-format metrics snapshot after the command. validate-trace checks
every line of a .jsonl trace file against the documented schema.

bench measures scan/aggregate and sample-build throughput at 1/2/4/8
threads on a generated skewed TPC-H view and writes the results as JSON
(default BENCH_parallel.json), including a per-stage wall-time breakdown
(scan vs merge vs finalize) from the span timers, plus an observability
overhead report (metrics on vs off) next to it as BENCH_obs.json.

bench kernels compares the scalar reference executor against the
vectorized kernels (selection vectors, typed aggregation loops, dense
group ids) on three workloads — a dictionary group-by, an integer
group-by, and an ungrouped filter — at 1 and 4 threads, and writes
BENCH_kernels.json. Answers are bit-identical across modes by contract;
--min-speedup F fails the command if the single-thread dictionary
group-by speedup falls below F. AQP_KERNELS=scalar forces the scalar
path process-wide for any command (explain --analyze shows which kernel
each operator used).

bench pruning measures zone-map block pruning on a clustered view:
range predicates at ~1%/5%/100% selectivity and a dictionary equality,
each timed pruned vs unpruned after a bit-identity check, written as
BENCH_pruning.json. Scans consult per-block min/max/null/dictionary
summaries persisted in .aqpt files (recomputed lazily for v2 files) to
skip blocks no row can match and to drop per-row predicate evaluation
on blocks every row matches; answers are bit-identical either way by
contract. AQP_PRUNE=off disables pruning process-wide; explain
--analyze and traces report blocks skipped/taken/scanned and rows
pruned per operator, and aqp_prune_blocks_total{outcome=...} counts
block outcomes whenever a prune plan is active.

serve runs a concurrent TCP query server (4-byte length-prefixed JSON
frames) over the same degradation ladder: per-class admission control
with bounded queues sheds overload with retry hints, per-query deadlines
step answers down to cheaper tiers instead of missing (the wire carries
tier/partial/deadline_limited), and SIGTERM or a shutdown request drains
in-flight work before exit. client sends one request with bounded
retry + exponential backoff + jitter on shed and transport errors.
bench serving measures end-to-end latency quantiles (with per-tier
counts) and overload shed behaviour against an in-process server, plus
semantic-cache cold-miss vs warm-hit p50 latency (BENCH_serving.json).
AQP_FAULTS also accepts serving faults: accept-drop@N, write-stall@N,
slow-read@N, exec-stall@N (comma-separated specs compose with storage
faults).

The server keeps a semantic answer cache keyed on canonicalized plans:
a repeated query (any whitespace/alias/predicate-order formatting) is
re-served from cache when the cached answer meets the request's
confidence (and --max-rel-error) contract at equal-or-tighter bounds;
concurrent identical misses execute once (single-flight). Answers served
from cache carry cache_hit on the wire. --cache-capacity bounds entries
(0 disables; LRU evicts beyond it), --cache-ttl-ms ages them out, the
invalidate request drops everything after a table rebuild, and
AQP_CACHE=off force-disables the cache regardless of flags.

Every query carries a trace id on the wire (client-supplied via
--trace-id or server-generated) and gets it back on the answer, shed,
timeout, or error response; the server stamps it into events and into
an always-on flight recorder — a ring of the last N request records
(--flight-recorder-cap), each with a contiguous stage timeline
(read/parse/cache/admission/execute/serialize/write, microseconds).
The ring is dumped as JSONL to --flight-dump on every anomaly (shed,
timeout, error, SLO breach) and at exit, or fetched live with the dump
verb. A sliding-window SLO watchdog derives per-class 10s/1m/5m
availability, shed/timeout/cache-hit rates and latency quantiles
(aqp_slo_* gauges; breach when both the 10s and 1m windows violate
--slo-availability or --slo-p99-ms with at least --slo-min-requests).
top renders those windows as a live table via the stats verb.
--shadow-rate F samples that fraction of sampled-tier answers for a
background exact re-execution (never holding an admission slot) and
records realized error vs the promised CI as aqp_shadow_* metrics.
client --stats prints a retry/shed summary line
(aqp_client_retry_total / aqp_client_shed_total count the same events).

explain prints the sampler's static rewrite plan for a query; with
--analyze it also executes the query and reports a per-operator profile
(rows in/out, selectivity, morsels per worker, per-morsel latency
quantiles, logical memory) with per-stratum attribution that reconciles
with the trace's rows_scanned. workload --calibrate runs the CI-coverage
calibration audit (observed vs nominal interval coverage per aggregate
function and per group-size decile, with Agresti-Coull under-coverage
flagging) and writes PREFIX_calibration.json. dashboard combines
PREFIX_report.json, PREFIX_traces.jsonl and PREFIX_calibration.json
(whichever exist) into a single self-contained PREFIX_dashboard.html.";

/// Dispatch one CLI invocation. `out` receives user-facing output.
pub fn run(args: Args, out: &mut dyn Write) -> Result<(), CliError> {
    let command = args
        .positionals()
        .first()
        .map(String::as_str)
        .unwrap_or("help");
    match command {
        "generate" => generate(&args, out),
        "import" => import(&args, out),
        "export" => export(&args, out),
        "preprocess" => preprocess(&args, out),
        "catalog" => catalog(&args, out),
        "query" => query_command(&args, out),
        "explain" => explain_command(&args, out),
        "workload" => workload_command(&args, out),
        "bench" => bench_command(&args, out),
        "serve" => crate::serve::serve_command(&args, out),
        "client" => crate::serve::client_command(&args, out),
        "top" => crate::serve::top_command(&args, out),
        "dashboard" => dashboard_command(&args, out),
        "validate-trace" => validate_trace_command(&args, out),
        "repl" => repl(&args, out, &mut std::io::stdin().lock()),
        "help" | "--help" => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        other => Err(CliError(format!("unknown command {other:?}\n\n{USAGE}"))),
    }
}

fn generate(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let kind = args
        .positionals()
        .get(1)
        .ok_or_else(|| CliError("generate needs a dataset kind: tpch | sales".into()))?
        .clone();
    let out_path = args.required("out")?;
    let seed = args.get_or("seed", 42u64)?;
    let t0 = Instant::now();
    let star = match kind.as_str() {
        "tpch" => {
            let scale = args.get_or("scale", 0.5f64)?;
            let skew = args.get_or("skew", 2.0f64)?;
            args.finish()?;
            gen_tpch(&TpchConfig {
                scale_factor: scale,
                zipf_z: skew,
                seed,
            })
            .map_err(boxed)?
        }
        "sales" => {
            let rows = args.get_or("rows", 50_000usize)?;
            let skew = args.get_or("skew", 1.5f64)?;
            args.finish()?;
            gen_sales(&SalesConfig {
                fact_rows: rows,
                zipf_z: skew,
                seed,
            })
            .map_err(boxed)?
        }
        other => return Err(CliError(format!("unknown dataset kind {other:?}"))),
    };
    let view = star.denormalize("view").map_err(boxed)?;
    write_table_file(&view, &out_path)?;
    writeln!(
        out,
        "generated {kind}: {} rows x {} columns -> {out_path} ({:.1} MB) in {:?}",
        view.num_rows(),
        view.schema().len(),
        view.byte_size() as f64 / 1e6,
        t0.elapsed()
    )?;
    Ok(())
}

fn import(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let csv_path = args.required("csv")?;
    let out_path = args.required("out")?;
    let name = args.optional("name").unwrap_or_else(|| "view".to_owned());
    args.finish()?;
    let table = read_csv_file(name, &csv_path)?;
    write_table_file(&table, &out_path)?;
    writeln!(
        out,
        "imported {}: {} rows x {} columns -> {out_path}",
        csv_path,
        table.num_rows(),
        table.schema().len()
    )?;
    Ok(())
}

fn export(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let view_path = args.required("view")?;
    let out_path = args.required("out")?;
    args.finish()?;
    let table = read_table_file(&view_path)?;
    write_csv_file(&table, &out_path)?;
    writeln!(
        out,
        "exported {} rows x {} columns -> {out_path}",
        table.num_rows(),
        table.schema().len()
    )?;
    Ok(())
}

fn preprocess(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let view_path = args.required("view")?;
    let out_path = args.required("out")?;
    let rate = args.get_or("rate", 0.01f64)?;
    let gamma = args.get_or("gamma", 0.5f64)?;
    let tau = args.get_or("tau", 5000usize)?;
    let seed = args.get_or("seed", 42u64)?;
    let outlier_column = args.optional("outlier-column");
    args.finish()?;

    let view = read_table_file(&view_path)?;
    let mut config = SmallGroupConfig {
        tau,
        seed,
        ..SmallGroupConfig::with_rates(rate, gamma)
    };
    if let Some(column) = outlier_column {
        config.overall = OverallKind::OutlierIndexed { column };
    }
    let t0 = Instant::now();
    let sampler = SmallGroupSampler::build(&view, config).map_err(boxed)?;
    sampler.save(&out_path).map_err(at_path(&out_path))?;
    writeln!(
        out,
        "preprocessed {} rows in {:?}: {} small group tables, overall sample {} rows -> {out_path}",
        view.num_rows(),
        t0.elapsed(),
        sampler.catalog().num_tables(),
        sampler.catalog().overall_rows,
    )?;
    Ok(())
}

fn catalog(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let family = args.required("family")?;
    args.finish()?;
    let sampler = SmallGroupSampler::load(&family).map_err(at_path(&family))?;
    writeln!(out, "{}", sampler.catalog())?;
    Ok(())
}

/// Open a sample family through the degradation ladder, printing warnings
/// for anything short of a fully intact load.
pub(crate) fn open_family(family: &str, out: &mut dyn Write) -> Result<ResilientSystem, CliError> {
    let (system, report) = ResilientSystem::open(family);
    if !report.primary_intact {
        // Structured events ride alongside the (unchanged) printed
        // warnings; the default stderr/stdout bytes stay identical.
        if let Some(err) = &report.primary_error {
            aqp::obs::event::warn(
                "cli::open",
                "sample family load error",
                &[("family", family), ("error", &err.to_string())],
            );
            writeln!(out, "-- warning: {family}: {err}")?;
        }
        if !report.disabled_units.is_empty() {
            aqp::obs::event::warn(
                "cli::open",
                "serving degraded",
                &[("family", family), ("disabled_units", &report.disabled_units.join(","))],
            );
            writeln!(
                out,
                "-- warning: serving degraded; disabled small group tables: {}",
                report.disabled_units.join(", ")
            )?;
        } else if system.primary().is_some() {
            aqp::obs::event::warn(
                "cli::open",
                "file framing damaged but sample tables salvaged",
                &[("family", family)],
            );
            writeln!(out, "-- warning: file framing damaged but all sample tables salvaged")?;
        } else {
            aqp::obs::event::warn(
                "cli::open",
                "sample family unusable; exact tier only",
                &[("family", family)],
            );
            writeln!(
                out,
                "-- warning: sample family unusable; only the exact tier can serve (needs --view)"
            )?;
        }
    }
    Ok(system)
}

fn query_command(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let family = args.required("family")?;
    let view_path = args.optional("view");
    let want_exact = args.flag("exact");
    let trace = args.flag("trace");
    let stats = args.flag("stats");
    let confidence = args.get_or("confidence", 0.95f64)?;
    let row_budget = opt_usize(args, "row-budget")?;
    let threads = threads_arg(args)?;
    // Join all trailing positionals so unquoted SQL still forms the full
    // statement instead of silently truncating to its first word.
    let sql = args.positionals()[1..].join(" ");
    if sql.is_empty() {
        return Err(CliError("query needs a SQL string".into()));
    }
    args.finish()?;

    if want_exact && view_path.is_none() {
        return Err(CliError("--exact needs --view to compute the exact answer".into()));
    }
    let mut system = open_family(&family, out)?.with_threads(threads);
    let view = view_path
        .map(|p| read_table_file(&p).map_err(at_path(&p)))
        .transpose()?;
    if let Some(v) = &view {
        system = system.with_view(v.clone());
    }
    if let Some(budget) = row_budget {
        system = system.with_row_budget(budget);
    }
    answer_one(&system, view.as_ref(), &sql, want_exact, confidence, trace, out)?;
    if stats {
        write_metrics_snapshot(out)?;
    }
    Ok(())
}

/// Print the global metrics registry as Prometheus text exposition.
pub(crate) fn write_metrics_snapshot(out: &mut dyn Write) -> Result<(), CliError> {
    write!(out, "{}", aqp::obs::to_prometheus(&aqp::obs::global().snapshot()))?;
    Ok(())
}

/// Parse, answer and print one SQL query. With `trace` the per-query
/// [`QueryTrace`] is printed as one JSON line after the summary.
fn answer_one(
    system: &ResilientSystem,
    view: Option<&Table>,
    sql: &str,
    want_exact: bool,
    confidence: f64,
    trace: bool,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let parsed = parse_query(sql).map_err(boxed)?;
    let t0 = Instant::now();
    let (mut answer, query_trace) = if trace {
        let (a, t) = system.answer_traced(&parsed.query, confidence).map_err(boxed)?;
        (a, Some(t))
    } else {
        (system.answer(&parsed.query, confidence).map_err(boxed)?, None)
    };
    let approx_time = t0.elapsed();
    answer.sort_by_key();

    let exact = if want_exact {
        let view = view.ok_or_else(|| CliError("exact comparison needs a view".into()))?;
        Some(exact_answer(&DataSource::Wide(view), &parsed.query).map_err(boxed)?)
    } else {
        None
    };

    // Header.
    for name in &answer.group_names {
        write!(out, "{name}\t")?;
    }
    for alias in &answer.agg_aliases {
        write!(out, "{alias}\t")?;
    }
    if exact.is_some() {
        for alias in &answer.agg_aliases {
            write!(out, "exact {alias}\t")?;
        }
    }
    writeln!(out)?;

    for group in &answer.groups {
        for key in &group.key {
            write!(out, "{key}\t")?;
        }
        for value in &group.values {
            if value.is_exact() {
                write!(out, "{:.2}*\t", value.value())?;
            } else {
                write!(out, "{:.2} [{:.2},{:.2}]\t", value.value(), value.ci.lo, value.ci.hi)?;
            }
        }
        if let Some(ex) = &exact {
            // One truth value per aggregate, aligned with the estimates.
            for per_agg in &ex.per_agg {
                match per_agg.get(&group.key) {
                    Some(truth) => write!(out, "{truth:.2}\t")?,
                    None => write!(out, "-\t")?,
                }
            }
        }
        writeln!(out)?;
    }
    write!(
        out,
        "-- {} groups, {} rows scanned, tier {}{}, {approx_time:?}",
        answer.num_groups(),
        answer.rows_scanned,
        answer.tier,
        if answer.partial { " (partial: row budget hit)" } else { "" },
    )?;
    if let Some(ex) = &exact {
        let missed = ex.per_agg[0].keys().filter(|k| answer.group(k).is_none()).count();
        write!(out, "; exact has {} groups ({missed} missed)", ex.num_groups())?;
    }
    writeln!(out)?;
    match answer.tier {
        ServingTier::Primary | ServingTier::DegradedPrimary => {
            writeln!(out, "-- * = exact from small group tables")?
        }
        ServingTier::Overall | ServingTier::Exact => writeln!(out, "-- * = exact")?,
    }
    if let Some(t) = query_trace {
        writeln!(out, "{}", t.to_json())?;
    }
    Ok(())
}

/// `explain` — print the sampler's static rewrite plan for one query;
/// with `--analyze`, also execute it and append the per-operator profile
/// tree collected on the control thread.
fn explain_command(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let family = args.required("family")?;
    let view_path = args.optional("view");
    let analyze = args.flag("analyze");
    let confidence = args.get_or("confidence", 0.95f64)?;
    let row_budget = opt_usize(args, "row-budget")?;
    let threads = threads_arg(args)?;
    let sql = args.positionals()[1..].join(" ");
    if sql.is_empty() {
        return Err(CliError("explain needs a SQL string".into()));
    }
    args.finish()?;

    let mut system = open_family(&family, out)?.with_threads(threads);
    if let Some(p) = view_path {
        let v = read_table_file(&p).map_err(at_path(&p))?;
        system = system.with_view(v);
    }
    if let Some(budget) = row_budget {
        system = system.with_row_budget(budget);
    }
    let parsed = parse_query(&sql).map_err(boxed)?;
    match system.primary() {
        Some(sampler) => writeln!(out, "{}", sampler.explain(&parsed.query))?,
        None => writeln!(
            out,
            "no sample family loaded; the exact tier would scan the base view"
        )?,
    }
    if analyze {
        let (_, trace) = system.answer_traced(&parsed.query, confidence).map_err(boxed)?;
        write!(out, "{}", render_operator_tree(&trace))?;
    }
    Ok(())
}

/// Render the per-operator profiles of a trace as a text tree, ending
/// with the `rows_in` vs `rows_scanned` reconciliation line.
fn render_operator_tree(trace: &QueryTrace) -> String {
    let mut s = format!(
        "analyze: tier {}, plan {}, {} operator(s), {:.2} ms\n",
        trace.serving_tier,
        trace.plan,
        trace.operators.len(),
        trace.total_ms
    );
    let last = trace.operators.len().saturating_sub(1);
    for (i, op) in trace.operators.iter().enumerate() {
        let (branch, pad) = if i == last { ("`-", "  ") } else { ("|-", "| ") };
        let kernel = if op.kernel.is_empty() {
            String::new()
        } else {
            format!(", kernel {}", op.kernel)
        };
        s.push_str(&format!(
            "{branch} {} [stratum {}, weight {}{kernel}]\n",
            op.op, op.stratum, op.weight
        ));
        s.push_str(&format!(
            "{pad}   rows {} -> {} (selectivity {:.4}), {} morsel(s) across {} worker(s)\n",
            op.rows_in,
            op.rows_out,
            op.selectivity(),
            op.morsels,
            op.morsels_per_worker.len().max(1),
        ));
        s.push_str(&format!(
            "{pad}   morsel p50/p95/p99 {} / {} / {}, mem peak {}, resident {}\n",
            fmt_ns(op.morsel_p50_ns),
            fmt_ns(op.morsel_p95_ns),
            fmt_ns(op.morsel_p99_ns),
            fmt_bytes(op.mem_peak_bytes),
            fmt_bytes(op.mem_current_bytes),
        ));
        let blocks = op.blocks_skipped + op.blocks_taken + op.blocks_scanned;
        if blocks > 0 {
            s.push_str(&format!(
                "{pad}   pruning: {} block(s) skipped / {} taken / {} scanned of {}, {} row(s) pruned\n",
                op.blocks_skipped, op.blocks_taken, op.blocks_scanned, blocks, op.rows_pruned,
            ));
        }
    }
    let rows_in_total: u64 = trace.operators.iter().map(|o| o.rows_in).sum();
    s.push_str(&format!(
        "operator rows_in total {} vs trace rows_scanned {} -> {}\n",
        rows_in_total,
        trace.rows_scanned,
        if rows_in_total == trace.rows_scanned {
            "reconciles"
        } else {
            "MISMATCH"
        }
    ));
    s
}

/// Nanoseconds as a short human latency.
fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.1}us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.1}ms", ns / 1e6)
    } else {
        format!("{:.2}s", ns / 1e9)
    }
}

/// Bytes as a short human size.
fn fmt_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if b < 1024.0 {
        format!("{b:.0} B")
    } else if b < 1024.0 * 1024.0 {
        format!("{:.1} KiB", b / 1024.0)
    } else {
        format!("{:.1} MiB", b / (1024.0 * 1024.0))
    }
}

/// Run a generated query workload through the degradation ladder and
/// report accuracy plus per-tier serving counts.
fn workload_command(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let family = args.required("family")?;
    let view_path = args.required("view")?;
    let count = args.get_or("queries", 20usize)?;
    let grouping = args.get_or("grouping", 1usize)?;
    let seed = args.get_or("seed", 42u64)?;
    let confidence = args.get_or("confidence", 0.95f64)?;
    let row_budget = opt_usize(args, "row-budget")?;
    let threads = threads_arg(args)?;
    let trace = args.flag("trace");
    let stats = args.flag("stats");
    let calibrate = args.flag("calibrate");
    let obs_prefix = args.optional("obs-out").unwrap_or_else(|| "OBS".to_owned());
    args.finish()?;

    let view = read_table_file(&view_path).map_err(at_path(&view_path))?;
    let mut system = open_family(&family, out)?
        .with_threads(threads)
        .with_view(view.clone());
    if let Some(budget) = row_budget {
        system = system.with_row_budget(budget);
    }

    let profile = DatasetProfile::new(&view, &[], &[], 100);
    let eligible = profile.column_names().len();
    if eligible < grouping {
        return Err(CliError(format!(
            "view has {eligible} group-by-eligible columns but --grouping is {grouping}"
        )));
    }
    let queries = generate_queries(
        &profile,
        &QueryGenConfig {
            grouping_columns: grouping,
            seed,
            ..QueryGenConfig::default()
        },
        count,
    );
    let t0 = Instant::now();
    let (summary, traces) =
        evaluate_queries_traced(&system, &DataSource::Wide(&view), &queries, confidence, trace)
            .map_err(boxed)?;
    writeln!(
        out,
        "{} queries in {:?}: RelErr {:.4}, PctGroups {:.1}%, mean approx {:.2} ms",
        summary.queries,
        t0.elapsed(),
        summary.rel_err,
        summary.pct_groups,
        summary.approx_ms,
    )?;
    writeln!(out, "tiers: {}", summary.tiers)?;
    if summary.tiers.degraded_total() > 0 {
        writeln!(
            out,
            "-- {} of {} answers served below the primary tier",
            summary.tiers.degraded_total(),
            summary.tiers.total(),
        )?;
    }
    if trace {
        let snapshot = aqp::obs::global().snapshot();
        let traces_path = format!("{obs_prefix}_traces.jsonl");
        let mut jsonl = String::new();
        for t in &traces {
            jsonl.push_str(&t.to_json());
            jsonl.push('\n');
        }
        std::fs::write(&traces_path, jsonl).map_err(at_path(&traces_path))?;
        let metrics_path = format!("{obs_prefix}_metrics.prom");
        std::fs::write(&metrics_path, aqp::obs::to_prometheus(&snapshot))
            .map_err(at_path(&metrics_path))?;
        let report_path = format!("{obs_prefix}_report.json");
        std::fs::write(&report_path, obs_report_json(&summary, &traces, &snapshot))
            .map_err(at_path(&report_path))?;
        writeln!(
            out,
            "observability: {} traces -> {traces_path}, metrics -> {metrics_path}, report -> {report_path}",
            traces.len(),
        )?;
    }
    if calibrate {
        // The audit wants SUM/AVG batches too: every Float64 column is a
        // measure (the accuracy workload above keeps them out of group-bys
        // for the same reason).
        let measures: Vec<String> = view
            .schema()
            .fields()
            .iter()
            .filter(|f| f.data_type == DataType::Float64)
            .map(|f| f.name.clone())
            .collect();
        let measure_refs: Vec<&str> = measures.iter().map(String::as_str).collect();
        let cal_profile = DatasetProfile::new(&view, &measure_refs, &[], 100);
        let report = aqp::workload::run_calibration(
            &system,
            &DataSource::Wide(&view),
            &cal_profile,
            &aqp::workload::CalibrationConfig {
                nominal: confidence,
                queries_per_function: count,
                grouping_columns: grouping,
                seed,
                threads,
            },
        )
        .map_err(boxed)?;
        write!(out, "{report}")?;
        let cal_path = format!("{obs_prefix}_calibration.json");
        std::fs::write(&cal_path, report.to_json()).map_err(at_path(&cal_path))?;
        writeln!(
            out,
            "calibration: {} auditable cells over {} queries -> {cal_path}",
            report.overall.cells, report.queries,
        )?;
    }
    if stats {
        write_metrics_snapshot(out)?;
    }
    Ok(())
}

/// Thread counts measured by `bench`.
const BENCH_THREADS: &[usize] = &[1, 2, 4, 8];

/// Render one list of [`aqp::workload::BenchPoint`]s as a JSON array.
fn bench_points_json(points: &[aqp::workload::BenchPoint]) -> String {
    let entries: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"threads\": {}, \"elapsed_ms\": {:.3}, \"rows\": {}, \"rows_per_sec\": {:.1}}}",
                p.threads, p.elapsed_ms, p.rows, p.rows_per_sec
            )
        })
        .collect();
    format!("[\n{}\n  ]", entries.join(",\n"))
}

/// Speedup of the `threads`-thread point over the 1-thread point, if both
/// were measured.
fn bench_speedup(points: &[aqp::workload::BenchPoint], threads: usize) -> Option<f64> {
    let base = points.iter().find(|p| p.threads == 1)?;
    let at = points.iter().find(|p| p.threads == threads)?;
    (base.rows_per_sec > 0.0).then(|| at.rows_per_sec / base.rows_per_sec)
}

/// Measure morsel-driven throughput (sample build + query scan) at
/// 1/2/4/8 threads over a generated skewed TPC-H view, and write
/// `BENCH_parallel.json`.
fn bench_command(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    match args.positionals().get(1).map(String::as_str) {
        Some("kernels") => return bench_kernels_command(args, out),
        Some("pruning") => return bench_pruning_command(args, out),
        Some("serving") => return crate::serve::bench_serving_command(args, out),
        Some(other) => {
            return Err(CliError(format!(
                "unknown bench target {other:?} (expected: kernels, pruning, serving, or no target)"
            )))
        }
        None => {}
    }
    let scale = args.get_or("scale", 0.1f64)?;
    let skew = args.get_or("skew", 2.0f64)?;
    let seed = args.get_or("seed", 42u64)?;
    let rate = args.get_or("rate", 0.05f64)?;
    let gamma = args.get_or("gamma", 0.5f64)?;
    let iters = args.get_or("iters", 3usize)?.max(1);
    let stats = args.flag("stats");
    let out_path = args
        .optional("out")
        .unwrap_or_else(|| "BENCH_parallel.json".to_owned());
    args.finish()?;

    let star = gen_tpch(&TpchConfig {
        scale_factor: scale,
        zipf_z: skew,
        seed,
    })
    .map_err(boxed)?;
    let view = star.denormalize("bench_view").map_err(boxed)?;
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    writeln!(
        out,
        "bench: tpch scale {scale} (skew {skew}) -> {} rows, host parallelism {host}",
        view.num_rows()
    )?;

    let config = SmallGroupConfig {
        seed,
        ..SmallGroupConfig::with_rates(rate, gamma)
    };
    let query = parse_query(
        "SELECT lineitem.shipmode, COUNT(*), SUM(lineitem.extendedprice), \
         AVG(lineitem.quantity) FROM v GROUP BY lineitem.shipmode",
    )
    .map_err(boxed)?
    .query;
    let source = DataSource::Wide(&view);

    let mut build_points = Vec::new();
    let mut query_points = Vec::new();
    let mut stage_rows = Vec::new();
    for &threads in BENCH_THREADS {
        let build =
            aqp::workload::bench_build_throughput(&view, &config, threads).map_err(boxed)?;
        // Per-stage wall time from the span timers: the query runs emit
        // `aqp_stage_seconds{stage=...}` observations, so the snapshot
        // delta around the measurement window isolates this thread count.
        let before = aqp::obs::global().snapshot();
        let scan =
            aqp::workload::bench_query_throughput(&source, &query, threads, iters).map_err(boxed)?;
        let after = aqp::obs::global().snapshot();
        let per_iter = |stage: &str| {
            (stage_sum_ms(&after, stage) - stage_sum_ms(&before, stage)) / iters as f64
        };
        stage_rows.push(format!(
            "    {{\"threads\": {threads}, \"scan_ms\": {:.3}, \"merge_ms\": {:.3}, \"finalize_ms\": {:.3}}}",
            per_iter("query.scan"),
            per_iter("query.merge"),
            per_iter("query.finalize"),
        ));
        writeln!(
            out,
            "threads {threads}: build {:.0} rows/s ({:.1} ms), query {:.0} rows/s ({:.1} ms)",
            build.rows_per_sec, build.elapsed_ms, scan.rows_per_sec, scan.elapsed_ms
        )?;
        build_points.push(build);
        query_points.push(scan);
    }

    // Observability overhead: repeat the query measurement with metrics
    // runtime-disabled and compare. Written next to the main report as
    // BENCH_obs.json so the overhead of the instrumentation itself is a
    // tracked artifact.
    let mut obs_rows = Vec::new();
    let mut max_overhead: f64 = 0.0;
    for &threads in BENCH_THREADS {
        let on =
            aqp::workload::bench_query_throughput(&source, &query, threads, iters).map_err(boxed)?;
        aqp::obs::set_enabled(false);
        let off =
            aqp::workload::bench_query_throughput(&source, &query, threads, iters).map_err(boxed)?;
        aqp::obs::set_enabled(true);
        let overhead_pct = if off.elapsed_ms > 0.0 {
            (on.elapsed_ms - off.elapsed_ms) / off.elapsed_ms * 100.0
        } else {
            0.0
        };
        max_overhead = max_overhead.max(overhead_pct);
        obs_rows.push(format!(
            "    {{\"threads\": {threads}, \"metrics_on_ms\": {:.3}, \"metrics_off_ms\": {:.3}, \"metrics_on_rows_per_sec\": {:.1}, \"metrics_off_rows_per_sec\": {:.1}, \"overhead_pct\": {:.2}}}",
            on.elapsed_ms, off.elapsed_ms, on.rows_per_sec, off.rows_per_sec, overhead_pct
        ));
    }
    // Serving hot-path guard: the per-request observability commit —
    // seven stage-timeline marks, one flight-recorder push, one SLO
    // window update — measured standalone (ns/request, metrics on vs
    // runtime-off), then expressed against the 1-thread query time as
    // the worst-case serving overhead: even if every request were pure
    // scan, the commit adds this fraction on top.
    let commit_iters = 50_000u64;
    let bench_commit = |iters: u64| {
        let recorder = aqp::obs::FlightRecorder::new(256);
        let mut slo =
            aqp::obs::SloWindows::new(aqp::obs::SloConfig::default(), &["interactive", "batch"]);
        let t0 = std::time::Instant::now();
        for i in 0..iters {
            let mut timeline = aqp::obs::Timeline::start();
            for stage in ["read", "parse", "cache", "admission", "execute", "serialize", "write"] {
                timeline.mark(stage);
            }
            let total = timeline.total_micros();
            recorder.record(aqp::obs::RequestRecord {
                trace_id: format!("bench-{i}"),
                class: "interactive".into(),
                outcome: "answer".into(),
                tier: "primary".into(),
                cache_hit: false,
                rows_scanned: 0,
                total_micros: total,
                stages: timeline.into_stages(),
            });
            let _ = slo.record(
                "interactive",
                aqp::obs::SloOutcome::Answered { cache_hit: false },
                std::time::Duration::from_micros(total),
            );
        }
        t0.elapsed().as_nanos() as f64 / iters as f64
    };
    let commit_on_ns = bench_commit(commit_iters);
    aqp::obs::set_enabled(false);
    let commit_off_ns = bench_commit(commit_iters);
    aqp::obs::set_enabled(true);
    // Per-request scan wall time at 1 thread, from the throughput run.
    let query_ms = query_points
        .first()
        .map(|p| view.num_rows() as f64 / p.rows_per_sec * 1e3)
        .unwrap_or(0.0);
    let serving_overhead_pct = if query_ms > 0.0 {
        commit_on_ns / (query_ms * 1e6) * 100.0
    } else {
        0.0
    };
    max_overhead = max_overhead.max(serving_overhead_pct);

    let obs_path = std::path::Path::new(&out_path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .map_or_else(
            || "BENCH_obs.json".to_owned(),
            |p| p.join("BENCH_obs.json").to_string_lossy().into_owned(),
        );
    let obs_json = format!(
        "{{\n  \"iters\": {iters},\n  \"view_rows\": {},\n  \"query_overhead\": [\n{}\n  ],\n  \"serving_commit\": {{\"iters\": {commit_iters}, \"on_ns_per_request\": {commit_on_ns:.0}, \"off_ns_per_request\": {commit_off_ns:.0}, \"query_ms_1_thread\": {query_ms:.3}, \"overhead_pct\": {serving_overhead_pct:.3}}},\n  \"max_overhead_pct\": {max_overhead:.2}\n}}\n",
        view.num_rows(),
        obs_rows.join(",\n"),
    );
    std::fs::write(&obs_path, obs_json).map_err(at_path(&obs_path))?;
    writeln!(
        out,
        "observability overhead: max {max_overhead:.2}% across thread counts (serving commit {commit_on_ns:.0} ns on / {commit_off_ns:.0} ns off = {serving_overhead_pct:.3}% of a 1-thread query) -> {obs_path}"
    )?;

    let build_speedup = bench_speedup(&build_points, 4).unwrap_or(1.0);
    let query_speedup = bench_speedup(&query_points, 4).unwrap_or(1.0);
    let json = format!(
        "{{\n  \"dataset\": {{\"kind\": \"tpch\", \"scale_factor\": {scale}, \"zipf_z\": {skew}, \"seed\": {seed}}},\n  \"view_rows\": {},\n  \"host_parallelism\": {host},\n  \"build\": {},\n  \"query\": {},\n  \"query_stages\": [\n{}\n  ],\n  \"build_speedup_4_threads\": {build_speedup:.2},\n  \"query_speedup_4_threads\": {query_speedup:.2}\n}}\n",
        view.num_rows(),
        bench_points_json(&build_points),
        bench_points_json(&query_points),
        stage_rows.join(",\n"),
    );
    std::fs::write(&out_path, json).map_err(at_path(&out_path))?;
    writeln!(
        out,
        "4-thread speedup: build {build_speedup:.2}x, query {query_speedup:.2}x -> {out_path}"
    )?;
    if stats {
        write_metrics_snapshot(out)?;
    }
    Ok(())
}

/// `bench kernels` — compare the scalar reference executor against the
/// vectorised kernels on the same generated view and write
/// `BENCH_kernels.json`. Three workloads: a dictionary group-by (dense
/// group-id path), an integer group-by (hash path), and an ungrouped
/// selective filter, each at 1 and 4 threads. Answers are checked equal
/// across modes before timing; `--min-speedup` gates on the
/// single-thread dictionary group-by speedup.
fn bench_kernels_command(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let scale = args.get_or("scale", 0.1f64)?;
    let skew = args.get_or("skew", 2.0f64)?;
    let seed = args.get_or("seed", 42u64)?;
    let iters = args.get_or("iters", 5usize)?.max(1);
    let min_speedup = args.get_or("min-speedup", 0.0f64)?;
    let out_path = args
        .optional("out")
        .unwrap_or_else(|| "BENCH_kernels.json".to_owned());
    args.finish()?;

    let star = gen_tpch(&TpchConfig {
        scale_factor: scale,
        zipf_z: skew,
        seed,
    })
    .map_err(boxed)?;
    let view = star.denormalize("bench_view").map_err(boxed)?;
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    writeln!(
        out,
        "bench kernels: tpch scale {scale} (skew {skew}) -> {} rows, host parallelism {host}",
        view.num_rows()
    )?;
    let source = DataSource::Wide(&view);

    let workloads: &[(&str, &str)] = &[
        (
            "dict-group-by",
            "SELECT lineitem.shipmode, COUNT(*), SUM(lineitem.extendedprice), \
             AVG(lineitem.quantity) FROM v GROUP BY lineitem.shipmode",
        ),
        (
            "int-group-by",
            "SELECT lineitem.partkey, COUNT(*), SUM(lineitem.extendedprice) \
             FROM v GROUP BY lineitem.partkey",
        ),
        (
            "ungrouped-filter",
            "SELECT COUNT(*), SUM(lineitem.extendedprice) FROM v \
             WHERE lineitem.quantity >= 30",
        ),
    ];
    const KERNEL_THREADS: &[usize] = &[1, 4];
    let mut rows = Vec::new();
    let mut dict_speedup_1t = 1.0f64;
    for (name, sql) in workloads {
        let query = parse_query(sql).map_err(boxed)?.query;
        for &threads in KERNEL_THREADS {
            let scalar_opts = ExecOptions {
                parallelism: threads,
                kernels: KernelMode::Scalar,
                ..ExecOptions::default()
            };
            let vector_opts = ExecOptions {
                kernels: KernelMode::Vectorized,
                ..scalar_opts
            };
            // The determinism contract says the two paths agree on every
            // group and every tally; check it on this workload before
            // trusting the timing comparison.
            let a = execute(&source, &query, &scalar_opts).map_err(boxed)?;
            let b = execute(&source, &query, &vector_opts).map_err(boxed)?;
            if a.groups != b.groups {
                return Err(CliError(format!(
                    "kernel mismatch: scalar and vectorized outputs differ on {name} at {threads} thread(s)"
                )));
            }
            let scalar =
                aqp::workload::bench_query_throughput_with(&source, &query, &scalar_opts, iters)
                    .map_err(boxed)?;
            let vect =
                aqp::workload::bench_query_throughput_with(&source, &query, &vector_opts, iters)
                    .map_err(boxed)?;
            let speedup = if vect.elapsed_ms > 0.0 {
                scalar.elapsed_ms / vect.elapsed_ms
            } else {
                1.0
            };
            if *name == "dict-group-by" && threads == 1 {
                dict_speedup_1t = speedup;
            }
            writeln!(
                out,
                "{name} @ {threads} thread(s): scalar {:.0} rows/s, vectorized {:.0} rows/s -> {speedup:.2}x",
                scalar.rows_per_sec, vect.rows_per_sec
            )?;
            rows.push(format!(
                "    {{\"workload\": \"{name}\", \"threads\": {threads}, \"scalar_rows_per_sec\": {:.1}, \"vectorized_rows_per_sec\": {:.1}, \"scalar_ms\": {:.3}, \"vectorized_ms\": {:.3}, \"speedup\": {speedup:.3}}}",
                scalar.rows_per_sec, vect.rows_per_sec, scalar.elapsed_ms, vect.elapsed_ms
            ));
        }
    }
    let json = format!(
        "{{\n  \"dataset\": {{\"kind\": \"tpch\", \"scale_factor\": {scale}, \"zipf_z\": {skew}, \"seed\": {seed}}},\n  \"view_rows\": {},\n  \"host_parallelism\": {host},\n  \"iters\": {iters},\n  \"results\": [\n{}\n  ],\n  \"dict_group_by_speedup_1_thread\": {dict_speedup_1t:.3}\n}}\n",
        view.num_rows(),
        rows.join(",\n"),
    );
    std::fs::write(&out_path, json).map_err(at_path(&out_path))?;
    writeln!(
        out,
        "dictionary group-by single-thread speedup {dict_speedup_1t:.2}x -> {out_path}"
    )?;
    if dict_speedup_1t < min_speedup {
        return Err(CliError(format!(
            "kernel speedup gate failed: dictionary group-by single-thread speedup \
             {dict_speedup_1t:.2}x is below the required {min_speedup:.2}x"
        )));
    }
    Ok(())
}

/// `bench pruning` — zone-map block pruning on a *clustered* view (rows
/// sorted by the range column, dictionary values per block — the layout
/// pruning exists for) and write `BENCH_pruning.json`. Four workloads:
/// range predicates at ~1%, ~5%, and 100% selectivity plus a dictionary
/// equality, each run pruned (`PruneMode::On`) and unpruned
/// (`PruneMode::Off`) at 1 thread. Answers are checked bit-equal across
/// modes before timing (which also pays the lazy zone-map computation
/// outside the timed window); `--min-speedup` gates on the ~5%-selectivity
/// range speedup.
fn bench_pruning_command(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    const BLOCK: usize = aqp::storage::ZONE_BLOCK_ROWS;
    let rows = args.get_or("rows", 2_000_000usize)?.max(BLOCK);
    let iters = args.get_or("iters", 5usize)?.max(1);
    let min_speedup = args.get_or("min-speedup", 0.0f64)?;
    let stats = args.flag("stats");
    let out_path = args
        .optional("out")
        .unwrap_or_else(|| "BENCH_pruning.json".to_owned());
    args.finish()?;

    // Clustered synthetic view: `k` ascends (disjoint per-block ranges),
    // `cat` holds one dictionary value per block, measures carry noise.
    let schema = SchemaBuilder::new()
        .field("k", DataType::Int64)
        .field("cat", DataType::Utf8)
        .field("val", DataType::Float64)
        .field("amt", DataType::Float64)
        .build()
        .map_err(boxed)?;
    let mut view = Table::empty("bench_pruning", schema);
    let cats = ["air", "rail", "ship", "truck"];
    let mut state: u64 = 0x9e3779b97f4a7c15;
    for r in 0..rows {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let noise = (state >> 33) as f64 / (1u64 << 31) as f64;
        view.push_row(&[
            Value::Int64(r as i64),
            cats[r / BLOCK % cats.len()].into(),
            Value::Float64(noise * 100.0),
            Value::Float64((r % 97) as f64),
        ])
        .map_err(boxed)?;
    }
    writeln!(
        out,
        "bench pruning: {} clustered rows ({} zone-map blocks of {BLOCK})",
        rows,
        rows.div_ceil(BLOCK)
    )?;
    let source = DataSource::Wide(&view);

    // COUNT + SUM over a dict group-by: enough aggregation to be a real
    // query, little enough that the scan (what pruning removes) is the
    // dominant cost being measured.
    let grouped = |pred: Expr| {
        Query::builder()
            .count()
            .sum("val")
            .group_by("cat")
            .filter(pred)
            .build()
            .map_err(boxed)
    };
    let workloads: Vec<(&str, f64, Query)> = vec![
        ("range-1pct", 1.0, grouped(Expr::cmp("k", CmpOp::Lt, (rows / 100) as i64))?),
        ("range-5pct", 5.0, grouped(Expr::cmp("k", CmpOp::Lt, (rows / 20) as i64))?),
        ("range-100pct", 100.0, grouped(Expr::cmp("k", CmpOp::Ge, 0i64))?),
        ("dict-eq", 25.0, grouped(Expr::in_set("cat", vec!["rail".into()]))?),
    ];

    let mut rows_json = Vec::new();
    let mut gate_speedup = 1.0f64;
    let mut full_scan_overhead_pct = 0.0f64;
    for (name, selectivity, query) in &workloads {
        let off_opts = ExecOptions {
            parallelism: 1,
            pruning: PruneMode::Off,
            ..ExecOptions::default()
        };
        let on_opts = ExecOptions {
            pruning: PruneMode::On,
            ..off_opts
        };
        // Bit-identity gate before timing; the pruned run also computes
        // and caches the zone maps so the timed window measures pruning,
        // not map construction.
        let a = execute(&source, query, &off_opts).map_err(boxed)?;
        let b = execute(&source, query, &on_opts).map_err(boxed)?;
        if a.groups != b.groups {
            return Err(CliError(format!(
                "pruning mismatch: pruned and unpruned outputs differ on {name}"
            )));
        }
        let off = aqp::workload::bench_query_throughput_with(&source, query, &off_opts, iters)
            .map_err(boxed)?;
        let on = aqp::workload::bench_query_throughput_with(&source, query, &on_opts, iters)
            .map_err(boxed)?;
        let speedup = if on.elapsed_ms > 0.0 {
            off.elapsed_ms / on.elapsed_ms
        } else {
            1.0
        };
        if *name == "range-5pct" {
            gate_speedup = speedup;
        }
        if *name == "range-100pct" && off.elapsed_ms > 0.0 {
            full_scan_overhead_pct = (on.elapsed_ms - off.elapsed_ms) / off.elapsed_ms * 100.0;
        }
        writeln!(
            out,
            "{name} ({selectivity}% of rows): unpruned {:.0} rows/s, pruned {:.0} rows/s -> {speedup:.2}x",
            off.rows_per_sec, on.rows_per_sec
        )?;
        rows_json.push(format!(
            "    {{\"workload\": \"{name}\", \"selectivity_pct\": {selectivity}, \"unpruned_rows_per_sec\": {:.1}, \"pruned_rows_per_sec\": {:.1}, \"unpruned_ms\": {:.3}, \"pruned_ms\": {:.3}, \"speedup\": {speedup:.3}}}",
            off.rows_per_sec, on.rows_per_sec, off.elapsed_ms, on.elapsed_ms
        ));
    }
    let json = format!(
        "{{\n  \"view_rows\": {rows},\n  \"zone_block_rows\": {BLOCK},\n  \"iters\": {iters},\n  \"results\": [\n{}\n  ],\n  \"range_5pct_speedup\": {gate_speedup:.3},\n  \"full_scan_overhead_pct\": {full_scan_overhead_pct:.3}\n}}\n",
        rows_json.join(",\n"),
    );
    std::fs::write(&out_path, json).map_err(at_path(&out_path))?;
    writeln!(
        out,
        "5%-selectivity range speedup {gate_speedup:.2}x, full-scan overhead {full_scan_overhead_pct:.2}% -> {out_path}"
    )?;
    if stats {
        write_metrics_snapshot(out)?;
    }
    if gate_speedup < min_speedup {
        return Err(CliError(format!(
            "pruning speedup gate failed: 5%-selectivity range speedup {gate_speedup:.2}x \
             is below the required {min_speedup:.2}x"
        )));
    }
    Ok(())
}

/// Cumulative milliseconds recorded for one `aqp_stage_seconds` stage in
/// a snapshot (0 when the stage has not fired yet).
fn stage_sum_ms(snap: &aqp::obs::Snapshot, stage: &str) -> f64 {
    snap.histogram("aqp_stage_seconds", &[("stage", stage)])
        .map_or(0.0, |h| h.sum_seconds * 1e3)
}

/// `dashboard PREFIX` — combine the artifacts written under PREFIX
/// (report, traces, calibration; whichever exist) into one
/// dependency-free HTML file at `PREFIX_dashboard.html`.
fn dashboard_command(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let prefix = args
        .positionals()
        .get(1)
        .ok_or_else(|| {
            CliError("dashboard needs a PREFIX argument (as passed to --obs-out)".into())
        })?
        .clone();
    args.finish()?;

    let report_path = format!("{prefix}_report.json");
    let report = match std::fs::read_to_string(&report_path) {
        Ok(text) => Some(aqp::obs::json::parse(&text).map_err(at_path(&report_path))?),
        Err(_) => None,
    };
    let calibration_path = format!("{prefix}_calibration.json");
    let calibration = match std::fs::read_to_string(&calibration_path) {
        Ok(text) => Some(aqp::obs::json::parse(&text).map_err(at_path(&calibration_path))?),
        Err(_) => None,
    };
    let traces_path = format!("{prefix}_traces.jsonl");
    let mut traces = Vec::new();
    let mut have_traces = false;
    if let Ok(text) = std::fs::read_to_string(&traces_path) {
        have_traces = true;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            traces.push(
                QueryTrace::from_json(line)
                    .map_err(|e| CliError(format!("{traces_path}:{}: {e}", lineno + 1)))?,
            );
        }
    }
    if report.is_none() && calibration.is_none() && !have_traces {
        return Err(CliError(format!(
            "no artifacts found for prefix {prefix:?}: expected at least one of \
             {report_path}, {traces_path}, {calibration_path}"
        )));
    }
    let html = aqp::obs::dashboard::render(&aqp::obs::dashboard::DashboardData {
        title: &prefix,
        report: report.as_ref(),
        calibration: calibration.as_ref(),
        traces: &traces,
    });
    let html_path = format!("{prefix}_dashboard.html");
    std::fs::write(&html_path, &html).map_err(at_path(&html_path))?;
    writeln!(
        out,
        "dashboard: report {}, calibration {}, {} trace(s) -> {html_path}",
        if report.is_some() { "yes" } else { "no" },
        if calibration.is_some() { "yes" } else { "no" },
        traces.len(),
    )?;
    Ok(())
}

/// Validate a `.jsonl` trace file: every non-empty line must parse as a
/// [`QueryTrace`] matching the documented schema.
fn validate_trace_command(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let path = args
        .positionals()
        .get(1)
        .ok_or_else(|| CliError("validate-trace needs a FILE argument".into()))?
        .clone();
    args.finish()?;
    let text = std::fs::read_to_string(&path).map_err(at_path(&path))?;
    let mut checked = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        aqp::obs::trace::validate_json(line)
            .map_err(|e| CliError(format!("{path}:{}: {e}", lineno + 1)))?;
        checked += 1;
    }
    if checked == 0 {
        return Err(CliError(format!("{path}: no trace records found")));
    }
    writeln!(out, "{path}: {checked} trace records valid")?;
    Ok(())
}

/// Interactive loop reading one SQL statement per line.
pub fn repl(args: &Args, out: &mut dyn Write, input: &mut dyn BufRead) -> Result<(), CliError> {
    let family = args.required("family")?;
    let view_path = args.optional("view");
    let trace = args.flag("trace");
    let stats = args.flag("stats");
    let row_budget = opt_usize(args, "row-budget")?;
    let threads = threads_arg(args)?;
    args.finish()?;
    let mut system = open_family(&family, out)?.with_threads(threads);
    let view = view_path
        .map(|p| read_table_file(&p).map_err(at_path(&p)))
        .transpose()?;
    if let Some(v) = &view {
        system = system.with_view(v.clone());
    }
    if let Some(budget) = row_budget {
        system = system.with_row_budget(budget);
    }

    match system.primary() {
        Some(sampler) => writeln!(
            out,
            "aqp repl — {} sample tables over {} rows; commands: \\catalog, \\explain SQL, \\quit",
            sampler.catalog().num_tables(),
            sampler.view_rows(),
        )?,
        None => writeln!(
            out,
            "aqp repl — exact tier only, {} view rows; commands: \\catalog, \\explain SQL, \\quit",
            view.as_ref().map_or(0, Table::num_rows),
        )?,
    }
    let mut line = String::new();
    loop {
        write!(out, "aqp> ")?;
        out.flush()?;
        line.clear();
        if input.read_line(&mut line)? == 0 {
            break;
        }
        let trimmed = line.trim();
        match trimmed {
            "" => continue,
            "\\quit" | "\\q" | "exit" => break,
            "\\catalog" => match system.primary() {
                Some(sampler) => writeln!(out, "{}", sampler.catalog())?,
                None => writeln!(out, "no sample family loaded; serving from the exact tier")?,
            },
            cmd if cmd.strip_prefix("\\explain").is_some_and(|r| r.is_empty() || r.starts_with(char::is_whitespace)) => {
                let sql = cmd.trim_start_matches("\\explain").trim();
                let Some(sampler) = system.primary() else {
                    writeln!(out, "no sample family loaded; \\explain unavailable")?;
                    continue;
                };
                if sql.is_empty() {
                    writeln!(out, "usage: \\explain SELECT ...")?;
                } else {
                    match parse_query(sql) {
                        Ok(parsed) => writeln!(out, "{}", sampler.explain(&parsed.query))?,
                        Err(e) => writeln!(out, "error: {e}")?,
                    }
                }
            }
            sql => {
                let want_exact = view.is_some();
                if let Err(e) =
                    answer_one(&system, view.as_ref(), sql, want_exact, 0.95, trace, out)
                {
                    writeln!(out, "error: {e}")?;
                }
                if stats {
                    write_metrics_snapshot(out)?;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    /// Serialises tests that either toggle the global metrics switch
    /// (`bench`'s overhead measurement) or assert on global-registry
    /// output, so a metrics-off window in one test cannot starve another
    /// test's snapshot.
    static METRICS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn metrics_lock() -> std::sync::MutexGuard<'static, ()> {
        METRICS_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn run_cli(parts: &[&str]) -> Result<String, CliError> {
        let args = Args::parse(parts.iter().map(|s| (*s).to_owned()))?;
        let mut out = Vec::new();
        run(args, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    fn temp_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "aqp_cli_test_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn full_workflow() {
        let dir = temp_dir();
        let view = dir.join("v.aqpt");
        let family = dir.join("f.aqps");

        let msg = run_cli(&[
            "generate", "tpch", "--scale", "0.02", "--skew", "2.0", "--out",
            view.to_str().unwrap(),
        ])
        .unwrap();
        assert!(msg.contains("generated tpch"), "{msg}");

        let msg = run_cli(&[
            "preprocess", "--view", view.to_str().unwrap(), "--rate", "0.1", "--gamma",
            "0.5", "--out", family.to_str().unwrap(),
        ])
        .unwrap();
        assert!(msg.contains("small group tables"), "{msg}");

        let msg = run_cli(&["catalog", "--family", family.to_str().unwrap()]).unwrap();
        assert!(msg.contains("overall sample"), "{msg}");

        let msg = run_cli(&[
            "query",
            "--family",
            family.to_str().unwrap(),
            "--view",
            view.to_str().unwrap(),
            "--exact",
            "SELECT lineitem.shipmode, COUNT(*) FROM v GROUP BY lineitem.shipmode",
        ])
        .unwrap();
        assert!(msg.contains("groups"), "{msg}");
        assert!(msg.contains("exact"), "{msg}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sales_generation_and_sum_query() {
        let dir = temp_dir();
        let view = dir.join("s.aqpt");
        let family = dir.join("s.aqps");
        run_cli(&[
            "generate", "sales", "--rows", "2000", "--out", view.to_str().unwrap(),
        ])
        .unwrap();
        run_cli(&[
            "preprocess", "--view", view.to_str().unwrap(), "--rate", "0.05", "--out",
            family.to_str().unwrap(),
        ])
        .unwrap();
        let msg = run_cli(&[
            "query",
            "--family",
            family.to_str().unwrap(),
            "SELECT store.region, SUM(sales.revenue) FROM s GROUP BY store.region",
        ])
        .unwrap();
        assert!(msg.contains("sum_sales_revenue"), "{msg}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn csv_import_export_workflow() {
        let dir = temp_dir();
        let csv = dir.join("data.csv");
        let view = dir.join("v.aqpt");
        let family = dir.join("f.aqps");
        let back = dir.join("back.csv");

        // Write a small CSV by hand: 190 common rows, 10 rare rows.
        let mut text = String::from("product,price\n");
        for i in 0..190 {
            text.push_str(&format!("stereo,{}.5\n", i % 7));
        }
        for i in 0..10 {
            text.push_str(&format!("tv,{}\n", 100 + i));
        }
        std::fs::write(&csv, text).unwrap();

        let msg = run_cli(&[
            "import", "--csv", csv.to_str().unwrap(), "--name", "shop", "--out",
            view.to_str().unwrap(),
        ])
        .unwrap();
        assert!(msg.contains("200 rows"), "{msg}");

        run_cli(&[
            "preprocess", "--view", view.to_str().unwrap(), "--rate", "0.1", "--out",
            family.to_str().unwrap(),
        ])
        .unwrap();
        let msg = run_cli(&[
            "query",
            "--family",
            family.to_str().unwrap(),
            "SELECT product, COUNT(*) FROM shop GROUP BY product",
        ])
        .unwrap();
        assert!(msg.contains("tv"), "{msg}");
        assert!(msg.contains("10.00*"), "rare group exact: {msg}");

        let msg = run_cli(&[
            "export", "--view", view.to_str().unwrap(), "--out", back.to_str().unwrap(),
        ])
        .unwrap();
        assert!(msg.contains("exported 200 rows"), "{msg}");
        assert!(std::fs::read_to_string(&back).unwrap().starts_with("product,price"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn workload_reports_tier_counts() {
        let dir = temp_dir();
        let view = dir.join("w.aqpt");
        let family = dir.join("w.aqps");
        run_cli(&[
            "generate", "sales", "--rows", "2000", "--out", view.to_str().unwrap(),
        ])
        .unwrap();
        run_cli(&[
            "preprocess", "--view", view.to_str().unwrap(), "--rate", "0.05", "--out",
            family.to_str().unwrap(),
        ])
        .unwrap();
        let msg = run_cli(&[
            "workload", "--family", family.to_str().unwrap(), "--view",
            view.to_str().unwrap(), "--queries", "4",
        ])
        .unwrap();
        assert!(msg.contains("4 queries"), "{msg}");
        assert!(msg.contains("tiers: primary"), "{msg}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_family_degrades_to_exact_with_view() {
        let dir = temp_dir();
        let view = dir.join("d.aqpt");
        run_cli(&[
            "generate", "sales", "--rows", "1000", "--out", view.to_str().unwrap(),
        ])
        .unwrap();
        let msg = run_cli(&[
            "query",
            "--family",
            dir.join("never_written.aqps").to_str().unwrap(),
            "--view",
            view.to_str().unwrap(),
            "SELECT store.region, COUNT(*) FROM s GROUP BY store.region",
        ])
        .unwrap();
        assert!(msg.contains("warning"), "{msg}");
        assert!(msg.contains("tier exact"), "{msg}");

        // Same degradation with a corrupt (not just missing) family file.
        let family = dir.join("c.aqps");
        run_cli(&[
            "preprocess", "--view", view.to_str().unwrap(), "--rate", "0.05", "--out",
            family.to_str().unwrap(),
        ])
        .unwrap();
        let mut bytes = std::fs::read(&family).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&family, &bytes).unwrap();
        let msg = run_cli(&[
            "query",
            "--family",
            family.to_str().unwrap(),
            "--view",
            view.to_str().unwrap(),
            "SELECT store.region, COUNT(*) FROM s GROUP BY store.region",
        ])
        .unwrap();
        assert!(msg.contains("warning"), "{msg}");
        assert!(msg.contains("tier "), "{msg}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn row_budget_flags_partial_answers() {
        let dir = temp_dir();
        let view = dir.join("b.aqpt");
        run_cli(&[
            "generate", "sales", "--rows", "1000", "--out", view.to_str().unwrap(),
        ])
        .unwrap();
        // No family + tiny budget: the exact scan is truncated and flagged.
        let msg = run_cli(&[
            "query",
            "--family",
            dir.join("absent.aqps").to_str().unwrap(),
            "--view",
            view.to_str().unwrap(),
            "--row-budget",
            "100",
            "SELECT COUNT(*) FROM s",
        ])
        .unwrap();
        assert!(msg.contains("tier exact"), "{msg}");
        assert!(msg.contains("partial"), "{msg}");
        assert!(run_cli(&["query", "--family", "/tmp/x.aqps", "--row-budget", "abc", "SQL"]).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn query_accepts_threads_flag() {
        let dir = temp_dir();
        let view = dir.join("t.aqpt");
        let family = dir.join("t.aqps");
        run_cli(&[
            "generate", "sales", "--rows", "1500", "--out", view.to_str().unwrap(),
        ])
        .unwrap();
        run_cli(&[
            "preprocess", "--view", view.to_str().unwrap(), "--rate", "0.05", "--out",
            family.to_str().unwrap(),
        ])
        .unwrap();
        let sql = "SELECT store.region, COUNT(*), SUM(sales.revenue) FROM s GROUP BY store.region";
        // Drop the wall-clock suffix from the summary line before comparing.
        let strip_timing = |text: String| -> String {
            text.lines()
                .map(|l| match l.find(", tier ") {
                    Some(i) => &l[..i],
                    None => l,
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        let serial = run_cli(&["query", "--family", family.to_str().unwrap(), "--threads", "1", sql])
            .unwrap();
        let parallel =
            run_cli(&["query", "--family", family.to_str().unwrap(), "--threads", "4", sql])
                .unwrap();
        // Thread count must not change any printed estimate or interval.
        assert_eq!(strip_timing(serial), strip_timing(parallel));
        assert!(run_cli(&["query", "--family", family.to_str().unwrap(), "--threads", "no", sql])
            .is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn query_trace_and_stats_flags() {
        let _guard = metrics_lock();
        let dir = temp_dir();
        let view = dir.join("q.aqpt");
        let family = dir.join("q.aqps");
        run_cli(&[
            "generate", "sales", "--rows", "1500", "--out", view.to_str().unwrap(),
        ])
        .unwrap();
        run_cli(&[
            "preprocess", "--view", view.to_str().unwrap(), "--rate", "0.05", "--out",
            family.to_str().unwrap(),
        ])
        .unwrap();
        let msg = run_cli(&[
            "query", "--family", family.to_str().unwrap(), "--trace", "--stats",
            "SELECT store.region, COUNT(*) FROM s GROUP BY store.region",
        ])
        .unwrap();
        // The trace rides after the summary as one JSON line.
        let trace_line = msg
            .lines()
            .find(|l| l.starts_with('{'))
            .expect("trace JSON line present");
        aqp::obs::trace::validate_json(trace_line).unwrap();
        let trace = aqp::obs::QueryTrace::from_json(trace_line).unwrap();
        assert_eq!(trace.serving_tier, "primary", "{msg}");
        assert!(trace.rows_scanned > 0, "{msg}");
        assert!(!trace.sample_tables.is_empty(), "{msg}");
        assert!(trace.stages.iter().any(|s| s.stage == "query.scan"), "{msg}");
        // --stats appends a Prometheus snapshot.
        assert!(msg.contains("# TYPE aqp_serving_tier_total counter"), "{msg}");
        assert!(msg.contains("aqp_stage_seconds{"), "{msg}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn workload_trace_writes_artifacts() {
        let _guard = metrics_lock();
        let dir = temp_dir();
        let view = dir.join("wt.aqpt");
        let family = dir.join("wt.aqps");
        let prefix = dir.join("WT").to_str().unwrap().to_owned();
        run_cli(&[
            "generate", "sales", "--rows", "2000", "--out", view.to_str().unwrap(),
        ])
        .unwrap();
        run_cli(&[
            "preprocess", "--view", view.to_str().unwrap(), "--rate", "0.05", "--out",
            family.to_str().unwrap(),
        ])
        .unwrap();
        let msg = run_cli(&[
            "workload", "--family", family.to_str().unwrap(), "--view",
            view.to_str().unwrap(), "--queries", "4", "--trace", "--obs-out", &prefix,
        ])
        .unwrap();
        assert!(msg.contains("observability: 4 traces"), "{msg}");

        // Traces: 4 lines, each schema-valid, tiers consistent with the
        // run summary (healthy family -> all primary).
        let traces_path = format!("{prefix}_traces.jsonl");
        let jsonl = std::fs::read_to_string(&traces_path).unwrap();
        assert_eq!(jsonl.lines().count(), 4);
        for line in jsonl.lines() {
            aqp::obs::trace::validate_json(line).unwrap();
            let t = aqp::obs::QueryTrace::from_json(line).unwrap();
            assert_eq!(t.serving_tier, "primary");
            assert!(t.rows_scanned > 0);
        }
        let valid = run_cli(&["validate-trace", &traces_path]).unwrap();
        assert!(valid.contains("4 trace records valid"), "{valid}");

        // Metrics snapshot: Prometheus text with stage quantiles and the
        // tier counter the traces must agree with.
        let prom = std::fs::read_to_string(format!("{prefix}_metrics.prom")).unwrap();
        assert!(prom.contains("# TYPE aqp_stage_seconds summary"), "{prom}");
        assert!(prom.contains("quantile=\"0.99\""), "{prom}");
        assert!(prom.contains("aqp_serving_tier_total{tier=\"primary\"}"), "{prom}");
        assert!(prom.contains("aqp_rows_scanned_total"), "{prom}");

        // Report: single JSON document tying summary + traces + metrics.
        let report = std::fs::read_to_string(format!("{prefix}_report.json")).unwrap();
        let v = aqp::obs::json::parse(&report).unwrap();
        assert_eq!(
            v.get("summary").unwrap().get("queries").unwrap().as_f64(),
            Some(4.0)
        );
        assert_eq!(v.get("traces").unwrap().as_arr().unwrap().len(), 4);
        let tiers = v.get("summary").unwrap().get("tiers").unwrap();
        assert_eq!(tiers.get("primary").unwrap().as_f64(), Some(4.0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn validate_trace_rejects_bad_files() {
        let dir = temp_dir();
        let bad = dir.join("bad.jsonl");
        std::fs::write(&bad, "{\"query\": \"q\"}\n").unwrap();
        assert!(run_cli(&["validate-trace", bad.to_str().unwrap()]).is_err());
        let empty = dir.join("empty.jsonl");
        std::fs::write(&empty, "\n").unwrap();
        assert!(run_cli(&["validate-trace", empty.to_str().unwrap()]).is_err());
        assert!(run_cli(&["validate-trace"]).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bench_writes_json_report() {
        let _guard = metrics_lock();
        let dir = temp_dir();
        let report = dir.join("BENCH_parallel.json");
        let msg = run_cli(&[
            "bench", "--scale", "0.02", "--iters", "1", "--out", report.to_str().unwrap(),
        ])
        .unwrap();
        assert!(msg.contains("4-thread speedup"), "{msg}");
        assert!(msg.contains("observability overhead"), "{msg}");
        let json = std::fs::read_to_string(&report).unwrap();
        for key in [
            "\"build\"",
            "\"query\"",
            "\"rows_per_sec\"",
            "\"host_parallelism\"",
            "\"threads\": 8",
            "\"build_speedup_4_threads\"",
            "\"query_stages\"",
            "\"scan_ms\"",
            "\"merge_ms\"",
            "\"finalize_ms\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // The observability-overhead companion lands next to the report.
        let obs = std::fs::read_to_string(dir.join("BENCH_obs.json")).unwrap();
        for key in [
            "\"query_overhead\"",
            "\"metrics_on_ms\"",
            "\"metrics_off_ms\"",
            "\"metrics_on_rows_per_sec\"",
            "\"metrics_off_rows_per_sec\"",
            "\"overhead_pct\"",
            "\"max_overhead_pct\"",
            "\"threads\": 8",
        ] {
            assert!(obs.contains(key), "missing {key} in {obs}");
        }
        // The metrics switch is restored after the off-measurement.
        assert!(aqp::obs::enabled());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bench_kernels_writes_json_report() {
        let dir = temp_dir();
        let report = dir.join("BENCH_kernels.json");
        let msg = run_cli(&[
            "bench", "kernels", "--scale", "0.02", "--iters", "1", "--out",
            report.to_str().unwrap(),
        ])
        .unwrap();
        assert!(msg.contains("dict-group-by @ 1 thread(s)"), "{msg}");
        assert!(msg.contains("int-group-by @ 4 thread(s)"), "{msg}");
        assert!(msg.contains("ungrouped-filter"), "{msg}");
        assert!(
            msg.contains("dictionary group-by single-thread speedup"),
            "{msg}"
        );
        let json = std::fs::read_to_string(&report).unwrap();
        for key in [
            "\"workload\": \"dict-group-by\"",
            "\"workload\": \"int-group-by\"",
            "\"workload\": \"ungrouped-filter\"",
            "\"scalar_rows_per_sec\"",
            "\"vectorized_rows_per_sec\"",
            "\"speedup\"",
            "\"threads\": 4",
            "\"dict_group_by_speedup_1_thread\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bench_kernels_min_speedup_gate_fails_when_unreachable() {
        let dir = temp_dir();
        let report = dir.join("gate.json");
        // No implementation is 1000x faster; the gate must trip and the
        // error must say why.
        let err = run_cli(&[
            "bench", "kernels", "--scale", "0.01", "--iters", "1", "--min-speedup",
            "1000", "--out", report.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.0.contains("kernel speedup gate failed"), "{err}");
        // The report is still written so the numbers can be inspected.
        assert!(report.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bench_pruning_writes_json_report() {
        let _guard = metrics_lock();
        let dir = temp_dir();
        let report = dir.join("BENCH_pruning.json");
        let msg = run_cli(&[
            "bench", "pruning", "--rows", "20000", "--iters", "1", "--stats", "--out",
            report.to_str().unwrap(),
        ])
        .unwrap();
        assert!(msg.contains("range-1pct"), "{msg}");
        assert!(msg.contains("dict-eq"), "{msg}");
        assert!(msg.contains("full-scan overhead"), "{msg}");
        // --stats exposes the block-outcome counters the bench just fed.
        assert!(msg.contains("aqp_prune_blocks_total"), "{msg}");
        let json = std::fs::read_to_string(&report).unwrap();
        for key in [
            "\"workload\": \"range-1pct\"",
            "\"workload\": \"range-5pct\"",
            "\"workload\": \"range-100pct\"",
            "\"workload\": \"dict-eq\"",
            "\"unpruned_rows_per_sec\"",
            "\"pruned_rows_per_sec\"",
            "\"speedup\"",
            "\"range_5pct_speedup\"",
            "\"full_scan_overhead_pct\"",
            "\"zone_block_rows\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bench_pruning_min_speedup_gate_fails_when_unreachable() {
        let _guard = metrics_lock();
        let dir = temp_dir();
        let report = dir.join("gate.json");
        let err = run_cli(&[
            "bench", "pruning", "--rows", "20000", "--iters", "1", "--min-speedup",
            "100000", "--out", report.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.0.contains("pruning speedup gate failed"), "{err}");
        // The report is still written so the numbers can be inspected.
        assert!(report.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn explain_static_plan_matches_golden() {
        let dir = temp_dir();
        let view = dir.join("g.aqpt");
        let family = dir.join("g.aqps");
        run_cli(&[
            "generate", "tpch", "--scale", "0.02", "--skew", "2.0", "--seed", "42", "--out",
            view.to_str().unwrap(),
        ])
        .unwrap();
        run_cli(&[
            "preprocess", "--view", view.to_str().unwrap(), "--rate", "0.1", "--gamma",
            "0.5", "--seed", "42", "--out", family.to_str().unwrap(),
        ])
        .unwrap();
        let msg = run_cli(&[
            "explain",
            "--family",
            family.to_str().unwrap(),
            "SELECT lineitem.shipmode, COUNT(*) FROM v GROUP BY lineitem.shipmode",
        ])
        .unwrap();
        let golden = include_str!("../testdata/explain_golden.txt");
        assert_eq!(
            msg, golden,
            "static explain plan drifted from the checked-in golden"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn explain_analyze_reports_operators_and_reconciles() {
        let dir = temp_dir();
        let view = dir.join("a.aqpt");
        let family = dir.join("a.aqps");
        run_cli(&[
            "generate", "sales", "--rows", "2000", "--out", view.to_str().unwrap(),
        ])
        .unwrap();
        run_cli(&[
            "preprocess", "--view", view.to_str().unwrap(), "--rate", "0.05", "--out",
            family.to_str().unwrap(),
        ])
        .unwrap();
        let msg = run_cli(&[
            "explain",
            "--family",
            family.to_str().unwrap(),
            "--analyze",
            "--threads",
            "2",
            "SELECT store.region, COUNT(*) FROM s GROUP BY store.region",
        ])
        .unwrap();
        // Static plan first, then the executed per-operator profile.
        assert!(msg.contains("plan for:"), "{msg}");
        assert!(msg.contains("analyze: tier primary"), "{msg}");
        assert!(msg.contains("stratum"), "{msg}");
        assert!(msg.contains("selectivity"), "{msg}");
        assert!(msg.contains("mem peak"), "{msg}");
        assert!(msg.contains("morsel p50/p95/p99"), "{msg}");
        // Every operator reports which scan implementation ran; the
        // default mode is vectorised (dense or hash depending on the
        // group-by columns).
        assert!(msg.contains(", kernel vectorized-"), "{msg}");
        // Per-stratum row totals must reconcile exactly with rows_scanned.
        assert!(msg.contains("-> reconciles"), "{msg}");
        assert!(!msg.contains("MISMATCH"), "{msg}");
        // An unfiltered scan has no prune plan, so no pruning line.
        assert!(!msg.contains("pruning:"), "{msg}");
        // A prunable dictionary predicate activates block accounting.
        let pruned = run_cli(&[
            "explain",
            "--family",
            family.to_str().unwrap(),
            "--analyze",
            "SELECT COUNT(*) FROM s WHERE store.region IN ('REGION#000')",
        ])
        .unwrap();
        assert!(pruned.contains("pruning:"), "{pruned}");
        assert!(pruned.contains("block(s) skipped"), "{pruned}");
        // Without --analyze no profile tree is printed.
        let plain = run_cli(&[
            "explain",
            "--family",
            family.to_str().unwrap(),
            "SELECT store.region, COUNT(*) FROM s GROUP BY store.region",
        ])
        .unwrap();
        assert!(!plain.contains("analyze:"), "{plain}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn workload_calibrate_and_dashboard() {
        let _guard = metrics_lock();
        let dir = temp_dir();
        let view = dir.join("c.aqpt");
        let family = dir.join("c.aqps");
        let prefix = dir.join("CAL").to_str().unwrap().to_owned();
        run_cli(&[
            "generate", "sales", "--rows", "2000", "--out", view.to_str().unwrap(),
        ])
        .unwrap();
        run_cli(&[
            "preprocess", "--view", view.to_str().unwrap(), "--rate", "0.05", "--out",
            family.to_str().unwrap(),
        ])
        .unwrap();
        let msg = run_cli(&[
            "workload", "--family", family.to_str().unwrap(), "--view",
            view.to_str().unwrap(), "--queries", "6", "--trace", "--calibrate",
            "--obs-out", &prefix,
        ])
        .unwrap();
        assert!(msg.contains("CI coverage calibration"), "{msg}");
        assert!(msg.contains("by aggregate function"), "{msg}");
        assert!(msg.contains("calibration:"), "{msg}");

        // The JSON artifact has the documented shape, with COUNT plus the
        // measure-driven SUM/AVG batches (sales has Float64 measures).
        let cal = std::fs::read_to_string(format!("{prefix}_calibration.json")).unwrap();
        let v = aqp::obs::json::parse(&cal).unwrap();
        assert_eq!(v.get("nominal").and_then(|n| n.as_f64()), Some(0.95));
        let funcs = v.get("per_function").and_then(|f| f.as_arr()).unwrap();
        let labels: Vec<&str> = funcs
            .iter()
            .filter_map(|f| f.get("label").and_then(|l| l.as_str()))
            .collect();
        assert!(labels.contains(&"COUNT"), "{labels:?}");
        assert!(labels.contains(&"SUM"), "{labels:?}");
        assert!(labels.contains(&"AVG"), "{labels:?}");
        for f in funcs {
            for key in ["cells", "covered", "observed", "ci_lo", "ci_hi"] {
                assert!(f.get(key).and_then(|x| x.as_f64()).is_some(), "{key}");
            }
            assert!(f.get("flagged").and_then(|x| x.as_bool()).is_some());
        }

        // The dashboard combines all three artifacts into one HTML file
        // with stable section anchors.
        let msg = run_cli(&["dashboard", &prefix]).unwrap();
        assert!(msg.contains("report yes, calibration yes"), "{msg}");
        let html = std::fs::read_to_string(format!("{prefix}_dashboard.html")).unwrap();
        for anchor in [
            "id=\"explain\"",
            "id=\"calibration\"",
            "id=\"tiers\"",
            "id=\"stages\"",
            "<svg",
        ] {
            assert!(html.contains(anchor), "missing {anchor} in dashboard");
        }
        // A prefix with no artifacts is an error.
        assert!(run_cli(&["dashboard", dir.join("NOPE").to_str().unwrap()]).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn error_paths() {
        assert!(run_cli(&["frobnicate"]).is_err());
        assert!(run_cli(&["generate"]).is_err());
        assert!(run_cli(&["generate", "tpch"]).is_err(), "missing --out");
        assert!(run_cli(&["generate", "mars", "--out", "/tmp/x"]).is_err());
        assert!(run_cli(&["query", "--family", "/nonexistent.aqps", "SELECT"]).is_err());
        // --exact without --view.
        assert!(run_cli(&["query", "--family", "/nonexistent.aqps", "--exact", "SQL"]).is_err());
        // Typo guard.
        assert!(run_cli(&["catalog", "--famly", "/tmp/x"]).is_err());
        // explain needs SQL; dashboard needs a prefix.
        assert!(run_cli(&["explain", "--family", "/nonexistent.aqps"]).is_err());
        assert!(run_cli(&["dashboard"]).is_err());
        // Help always works.
        assert!(run_cli(&["help"]).unwrap().contains("USAGE"));
    }

    #[test]
    fn repl_session() {
        let dir = temp_dir();
        let view = dir.join("v.aqpt");
        let family = dir.join("f.aqps");
        run_cli(&[
            "generate", "tpch", "--scale", "0.02", "--out", view.to_str().unwrap(),
        ])
        .unwrap();
        run_cli(&[
            "preprocess", "--view", view.to_str().unwrap(), "--rate", "0.1", "--out",
            family.to_str().unwrap(),
        ])
        .unwrap();

        let args = Args::parse(
            ["repl", "--family", family.to_str().unwrap()]
                .iter()
                .map(|s| (*s).to_owned()),
        )
        .unwrap();
        let script = "\\catalog\nSELECT COUNT(*) FROM v\n\\explain SELECT COUNT(*) FROM v GROUP BY lineitem.shipmode\nbad sql here\n\\quit\n";
        let mut input = std::io::BufReader::new(script.as_bytes());
        let mut out = Vec::new();
        repl(&args, &mut out, &mut input).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("sample tables over"), "{text}");
        assert!(text.contains("cnt"), "{text}");
        assert!(text.contains("error:"), "{text}");
        assert!(text.contains("plan for:"), "{text}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
