//! SALES-like star schema generator.
//!
//! The paper's real-world SALES database (Section 5.2.1) was "a portion of
//! a large corporate sales database ... a star schema with a fact table
//! containing about 800,000 rows and 6 dimension tables ... 245 columns"
//! and, the paper observes, "relatively less skewed than the TPCH1G2.0z
//! database". We cannot ship the proprietary data, so this generator
//! reproduces the structural properties the experiments depend on:
//!
//! * a star with six dimension tables and a wide fact table — many
//!   candidate grouping columns with varied cardinalities, including a
//!   good number of long-tailed ones (vendors, cities, campaigns …) whose
//!   rare values create the small groups the paper's SALES workload is
//!   full of;
//! * moderate skew (default z = 1.5, below the TPC-H z = 2.0 runs but
//!   enough that rare attribute values exist — the regime where the paper
//!   reports small group sampling "consistently better" on SALES);
//! * near-unique columns (customer phone, order ids) so the τ
//!   distinct-value cut-off and the "no small groups" column-drop paths
//!   both trigger;
//! * heavy-tailed revenue/cost measures for the SUM-query and
//!   outlier-indexing experiments (Section 5.3.3).

use crate::values::{pareto, CategoricalPool, IntPool};
use aqp_query::{Dimension, QueryResult, StarSchema};
use aqp_storage::{DataType, SchemaBuilder, Table};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for the SALES-like generator.
#[derive(Debug, Clone, Copy)]
pub struct SalesConfig {
    /// Fact-table rows.
    pub fact_rows: usize,
    /// Zipf skew for categorical attributes (moderate by default).
    pub zipf_z: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SalesConfig {
    fn default() -> Self {
        SalesConfig {
            fact_rows: 100_000,
            zipf_z: 1.5,
            seed: 7,
        }
    }
}

/// Generate the SALES-like star schema.
pub fn gen_sales(cfg: &SalesConfig) -> QueryResult<StarSchema> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let z = cfg.zipf_z;
    let n = cfg.fact_rows;

    let n_product = (n / 100).clamp(50, 2_000);
    let n_store = (n / 400).clamp(20, 500);
    let n_customer = (n / 20).clamp(100, 20_000);
    let n_time = 1_096; // three years of days
    let n_promo = 100;
    let n_channel = 5;

    // ---- PRODUCT ----
    let schema = SchemaBuilder::new()
        .field("product.productkey", DataType::Int64)
        .field("product.category", DataType::Utf8)
        .field("product.subcategory", DataType::Utf8)
        .field("product.brand", DataType::Utf8)
        .field("product.vendor", DataType::Utf8)
        .field("product.line", DataType::Utf8)
        .field("product.color", DataType::Utf8)
        .field("product.size", DataType::Utf8)
        .field("product.unitprice", DataType::Float64)
        .build()?;
    let category = CategoricalPool::new("CAT", 20, z);
    let subcategory = CategoricalPool::new("SUBCAT", 100, z);
    let brand = CategoricalPool::new("BRAND", 120, z);
    let vendor = CategoricalPool::new("VENDOR", 150, z);
    let line = CategoricalPool::new("LINE", 40, z);
    let color = CategoricalPool::new("COLOR", 12, z);
    let size = CategoricalPool::new("SIZE", 8, z);
    let mut product = Table::empty("product", schema);
    for pk in 1..=n_product as i64 {
        product.push_row(&[
            pk.into(),
            category.sample(&mut rng).into(),
            subcategory.sample(&mut rng).into(),
            brand.sample(&mut rng).into(),
            vendor.sample(&mut rng).into(),
            line.sample(&mut rng).into(),
            color.sample(&mut rng).into(),
            size.sample(&mut rng).into(),
            pareto(&mut rng, 10.0, 1.8, 200.0).into(),
        ])?;
    }

    // ---- STORE ----
    let schema = SchemaBuilder::new()
        .field("store.storekey", DataType::Int64)
        .field("store.region", DataType::Utf8)
        .field("store.country", DataType::Utf8)
        .field("store.city", DataType::Utf8)
        .field("store.district", DataType::Utf8)
        .field("store.storetype", DataType::Utf8)
        .build()?;
    let region = CategoricalPool::new("REGION", 8, z);
    let country = CategoricalPool::new("COUNTRY", 30, z);
    let city = CategoricalPool::new("CITY", 200, z);
    let district = CategoricalPool::new("DISTRICT", 80, z);
    let storetype = CategoricalPool::new("STYPE", 4, z);
    let mut store = Table::empty("store", schema);
    for pk in 1..=n_store as i64 {
        store.push_row(&[
            pk.into(),
            region.sample(&mut rng).into(),
            country.sample(&mut rng).into(),
            city.sample(&mut rng).into(),
            district.sample(&mut rng).into(),
            storetype.sample(&mut rng).into(),
        ])?;
    }

    // ---- CUSTOMER (includes a near-unique phone column) ----
    let schema = SchemaBuilder::new()
        .field("customer.customerkey", DataType::Int64)
        .field("customer.segment", DataType::Utf8)
        .field("customer.ageband", DataType::Utf8)
        .field("customer.gender", DataType::Utf8)
        .field("customer.loyalty", DataType::Utf8)
        .field("customer.occupation", DataType::Utf8)
        .field("customer.city", DataType::Utf8)
        .field("customer.phone", DataType::Utf8)
        .build()?;
    let segment = CategoricalPool::new("SEGMENT", 6, z);
    let ageband = CategoricalPool::new("AGE", 7, z);
    let gender = CategoricalPool::new("GENDER", 3, z);
    let loyalty = CategoricalPool::new("LOYALTY", 4, z);
    let occupation = CategoricalPool::new("OCC", 40, z);
    let ccity = CategoricalPool::new("CCITY", 150, z);
    let mut customer = Table::empty("customer", schema);
    for pk in 1..=n_customer as i64 {
        customer.push_row(&[
            pk.into(),
            segment.sample(&mut rng).into(),
            ageband.sample(&mut rng).into(),
            gender.sample(&mut rng).into(),
            loyalty.sample(&mut rng).into(),
            occupation.sample(&mut rng).into(),
            ccity.sample(&mut rng).into(),
            format!("+1-555-{pk:08}").into(),
        ])?;
    }

    // ---- TIME ----
    let schema = SchemaBuilder::new()
        .field("time.timekey", DataType::Int64)
        .field("time.year", DataType::Int64)
        .field("time.quarter", DataType::Int64)
        .field("time.month", DataType::Int64)
        .field("time.weekday", DataType::Utf8)
        .build()?;
    let weekdays = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"];
    let mut time = Table::empty("time", schema);
    for pk in 1..=n_time as i64 {
        let day0 = pk - 1;
        time.push_row(&[
            pk.into(),
            (2000 + day0 / 366).into(),
            ((day0 % 366) / 92 + 1).into(),
            (((day0 % 366) / 31 + 1).min(12)).into(),
            weekdays[(day0 % 7) as usize].into(),
        ])?;
    }

    // ---- PROMOTION ----
    let schema = SchemaBuilder::new()
        .field("promotion.promokey", DataType::Int64)
        .field("promotion.promotype", DataType::Utf8)
        .field("promotion.media", DataType::Utf8)
        .field("promotion.campaign", DataType::Utf8)
        .build()?;
    let promotype = CategoricalPool::new("PROMO", 10, z);
    let media = CategoricalPool::new("MEDIA", 6, z);
    let campaign = CategoricalPool::new("CAMPAIGN", 60, z);
    let mut promotion = Table::empty("promotion", schema);
    for pk in 1..=n_promo as i64 {
        promotion.push_row(&[
            pk.into(),
            promotype.sample(&mut rng).into(),
            media.sample(&mut rng).into(),
            campaign.sample(&mut rng).into(),
        ])?;
    }

    // ---- CHANNEL ----
    let schema = SchemaBuilder::new()
        .field("channel.channelkey", DataType::Int64)
        .field("channel.name", DataType::Utf8)
        .field("channel.group", DataType::Utf8)
        .build()?;
    let channel_names = ["Web", "Retail", "Catalog", "Phone", "Partner"];
    let channel_groups = ["Direct", "Direct", "Indirect", "Direct", "Indirect"];
    let mut channel = Table::empty("channel", schema);
    for pk in 1..=n_channel as i64 {
        channel.push_row(&[
            pk.into(),
            channel_names[(pk - 1) as usize].into(),
            channel_groups[(pk - 1) as usize].into(),
        ])?;
    }

    // ---- SALES fact ----
    let schema = SchemaBuilder::new()
        .field("sales.productkey", DataType::Int64)
        .field("sales.storekey", DataType::Int64)
        .field("sales.customerkey", DataType::Int64)
        .field("sales.timekey", DataType::Int64)
        .field("sales.promokey", DataType::Int64)
        .field("sales.channelkey", DataType::Int64)
        .field("sales.units", DataType::Int64)
        .field("sales.revenue", DataType::Float64)
        .field("sales.cost", DataType::Float64)
        .field("sales.paymethod", DataType::Utf8)
        .field("sales.coupon", DataType::Bool)
        // Near-unique degenerate dimension: one order id per few rows.
        .field("sales.orderid", DataType::Utf8)
        .build()?;
    // Foreign keys are only mildly skewed: dimension attributes are already
    // Zipfian, and compounding both would overshoot the "moderately skewed"
    // profile the paper reports for SALES.
    let fk_z = z * 0.5;
    let fk_product = IntPool::new(n_product, fk_z);
    let fk_store = IntPool::new(n_store, fk_z);
    let fk_customer = IntPool::new(n_customer, fk_z);
    let fk_time = IntPool::new(n_time, fk_z);
    let fk_promo = IntPool::new(n_promo, fk_z);
    let fk_channel = IntPool::new(n_channel, fk_z);
    let units = IntPool::new(20, z);
    let paymethod = CategoricalPool::new("PAY", 5, z);
    let mut sales = Table::empty("sales", schema);
    for row in 0..n {
        let u = units.sample(&mut rng);
        let rev = u as f64 * pareto(&mut rng, 8.0, 1.3, 500.0);
        let cost = rev * rng.random_range(0.4..0.9);
        sales.push_row(&[
            fk_product.sample(&mut rng).into(),
            fk_store.sample(&mut rng).into(),
            fk_customer.sample(&mut rng).into(),
            fk_time.sample(&mut rng).into(),
            fk_promo.sample(&mut rng).into(),
            fk_channel.sample(&mut rng).into(),
            u.into(),
            rev.into(),
            cost.into(),
            paymethod.sample(&mut rng).into(),
            (rng.random::<f64>() < 0.15).into(),
            format!("ORD{:09}", row / 3).into(),
        ])?;
    }

    StarSchema::new(
        sales,
        vec![
            Dimension::new(product, "product.productkey", "sales.productkey"),
            Dimension::new(store, "store.storekey", "sales.storekey"),
            Dimension::new(customer, "customer.customerkey", "sales.customerkey"),
            Dimension::new(time, "time.timekey", "sales.timekey"),
            Dimension::new(promotion, "promotion.promokey", "sales.promokey"),
            Dimension::new(channel, "channel.channelkey", "sales.channelkey"),
        ],
    )
}

/// Measure columns suitable for SUM aggregation in generated queries.
pub const SALES_MEASURE_COLUMNS: &[&str] =
    &["sales.units", "sales.revenue", "sales.cost"];

/// Columns excluded from grouping (keys, measures and near-unique columns).
pub const SALES_EXCLUDED_GROUPING: &[&str] = &[
    "sales.productkey",
    "sales.storekey",
    "sales.customerkey",
    "sales.timekey",
    "sales.promokey",
    "sales.channelkey",
    "sales.revenue",
    "sales.cost",
    "sales.orderid",
    "product.productkey",
    "product.unitprice",
    "store.storekey",
    "customer.customerkey",
    "customer.phone",
    "time.timekey",
    "promotion.promokey",
    "channel.channelkey",
];

#[cfg(test)]
mod tests {
    use super::*;
    use aqp_query::{execute, DataSource, ExecOptions, Query};

    fn tiny() -> StarSchema {
        gen_sales(&SalesConfig {
            fact_rows: 5_000,
            zipf_z: 1.2,
            seed: 3,
        })
        .unwrap()
    }

    #[test]
    fn structure() {
        let s = tiny();
        assert_eq!(s.fact().num_rows(), 5_000);
        assert_eq!(s.num_dimensions(), 6);
        let wide = s.denormalize("w").unwrap();
        assert!(wide.schema().len() >= 35, "wide view has many columns");
    }

    #[test]
    fn determinism() {
        let a = tiny();
        let b = tiny();
        let ra = a.fact().column_by_name("sales.revenue").unwrap();
        let rb = b.fact().column_by_name("sales.revenue").unwrap();
        assert_eq!(ra.as_float64().unwrap(), rb.as_float64().unwrap());
    }

    #[test]
    fn near_unique_columns_present() {
        let s = tiny();
        // customer.phone: one distinct value per customer row.
        let cust = s.dimension(2);
        let phone = cust.column_by_name("customer.phone").unwrap();
        let (codes, dict) = phone.as_utf8().unwrap();
        assert_eq!(dict.len(), codes.len(), "phone is unique per row");
    }

    #[test]
    fn group_by_queries_work() {
        let s = tiny();
        let q = Query::builder()
            .count()
            .sum("sales.revenue")
            .group_by("store.region")
            .group_by("channel.name")
            .build()
            .unwrap();
        let out = execute(&DataSource::Star(&s), &q, &ExecOptions::default()).unwrap();
        let total: u64 = out.groups.iter().map(|g| g.aggs[0].rows).sum();
        assert_eq!(total, 5_000);
        assert!(out.num_groups() <= 8 * 5);
    }

    #[test]
    fn moderate_skew() {
        let s = tiny();
        let q = Query::builder().count().group_by("store.region").build().unwrap();
        let out = execute(&DataSource::Star(&s), &q, &ExecOptions::default()).unwrap();
        let max = out.groups.iter().map(|g| g.aggs[0].rows).max().unwrap();
        let share = max as f64 / 5_000.0;
        assert!(share > 0.2 && share < 0.85, "moderate skew, got {share}");
    }

    #[test]
    fn metadata_lists_are_valid() {
        let s = tiny();
        let wide = s.denormalize("w").unwrap();
        for m in SALES_MEASURE_COLUMNS {
            assert!(wide.schema().field(m).unwrap().data_type.is_numeric());
        }
        for c in SALES_EXCLUDED_GROUPING {
            assert!(wide.schema().contains(c), "{c}");
        }
    }
}
