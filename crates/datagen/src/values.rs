//! Shared helpers for generating categorical value pools.

use aqp_sampling::TruncatedZipf;
use rand::Rng;

/// A pool of `c` named categorical values sampled with Zipf(z) skew.
///
/// Rank 0 ("PREFIX#000") is the most common value.
pub(crate) struct CategoricalPool {
    names: Vec<String>,
    dist: TruncatedZipf,
}

impl CategoricalPool {
    pub(crate) fn new(prefix: &str, c: usize, z: f64) -> Self {
        CategoricalPool {
            names: (0..c).map(|i| format!("{prefix}#{i:03}")).collect(),
            dist: TruncatedZipf::new(c, z),
        }
    }

    pub(crate) fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> &str {
        &self.names[self.dist.sample(rng)]
    }
}

/// A pool of `c` integer values (1-based ranks) sampled with Zipf(z) skew.
pub(crate) struct IntPool {
    dist: TruncatedZipf,
}

impl IntPool {
    pub(crate) fn new(c: usize, z: f64) -> Self {
        IntPool {
            dist: TruncatedZipf::new(c, z),
        }
    }

    /// Sample a value in `1..=c` (rank + 1).
    pub(crate) fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        self.dist.sample(rng) as i64 + 1
    }

    /// Sample a 0-based rank in `0..c`.
    pub(crate) fn sample_rank<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.dist.sample(rng)
    }
}

/// A heavy-tailed positive measure: `scale · U^{-1/alpha}` capped at
/// `cap · scale` (a truncated Pareto). Used for price-like columns so the
/// outlier-indexing experiments see genuinely skewed aggregate inputs.
pub(crate) fn pareto<R: Rng + ?Sized>(rng: &mut R, scale: f64, alpha: f64, cap: f64) -> f64 {
    use rand::RngExt;
    let u: f64 = rng.random::<f64>().max(1e-12);
    (scale * u.powf(-1.0 / alpha)).min(scale * cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn categorical_pool_names_and_skew() {
        let mut rng = StdRng::seed_from_u64(1);
        let pool = CategoricalPool::new("BRAND", 10, 2.0);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..10_000 {
            *counts.entry(pool.sample(&mut rng).to_owned()).or_insert(0usize) += 1;
        }
        assert!(counts.keys().all(|k| k.starts_with("BRAND#")));
        // Rank 0 dominates at z = 2.
        let top = counts.get("BRAND#000").copied().unwrap_or(0);
        assert!(top > 5000, "rank 0 got {top}");
    }

    #[test]
    fn int_pool_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let pool = IntPool::new(50, 1.0);
        for _ in 0..1000 {
            let v = pool.sample(&mut rng);
            assert!((1..=50).contains(&v));
            let r = pool.sample_rank(&mut rng);
            assert!(r < 50);
        }
    }

    #[test]
    fn pareto_is_positive_and_capped() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = pareto(&mut rng, 100.0, 1.5, 1000.0);
            assert!((100.0 - 1e-9..=100_000.0 + 1e-9).contains(&x));
        }
    }
}
