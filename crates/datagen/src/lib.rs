//! # aqp-datagen
//!
//! Synthetic databases for the dynamic-sample-selection experiments,
//! replacing the two databases of the paper's Section 5.2.1:
//!
//! * [`tpch`] — a TPC-H-shaped star schema whose non-key attributes follow
//!   truncated Zipfian distributions with a configurable skew parameter
//!   `z`, standing in for the modified `dbgen` of \[13\] ("TPCHxGyz": scale
//!   factor `x`, Zipf parameter `y`). A micro-scale factor of 1 produces a
//!   60 000-row fact table; all reported accuracy metrics are scale-free.
//! * [`sales`] — a SALES-like star schema: six dimension tables, a wide
//!   fact table, moderate skew, and deliberately-included near-unique
//!   columns so the τ distinct-value cut-off path of preprocessing is
//!   exercised, mirroring the structural properties of the paper's real
//!   corporate sales database.
//!
//! Both generators are fully deterministic given their seed.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod sales;
pub mod tpch;
mod values;

pub use sales::{gen_sales, SalesConfig};
pub use tpch::{gen_tpch, TpchConfig};
