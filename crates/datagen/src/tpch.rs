//! Skewed TPC-H-style star schema generator.
//!
//! Reproduces the *shape* of the paper's TPCHxGyz databases (Section 5.2.1):
//! a LINEITEM fact table star-joined to PART, SUPPLIER, CUSTOMER and ORDERS
//! dimensions, with every non-key attribute — and the foreign keys
//! themselves — drawn from truncated Zipf(z) distributions, standing in for
//! the skewed `dbgen` variant of \[13\].
//!
//! Deviations from real TPC-H, both documented in DESIGN.md:
//! * micro-scale row counts (scale factor 1 ⇒ 60 000 fact rows instead of
//!   6 M) so the whole experiment suite runs in minutes — the paper's
//!   accuracy metrics are scale-free;
//! * `custkey` is carried directly on the fact table (a star) instead of
//!   reaching customers through orders (a snowflake), matching the paper's
//!   star-schema setting.
//!
//! The ORDERS dimension deliberately carries a `clerk` column with more
//! distinct values than the preprocessing threshold τ, so the τ cut-off
//! path is exercised on this database too.

use crate::values::{pareto, CategoricalPool, IntPool};
use aqp_query::{Dimension, QueryResult, StarSchema};
use aqp_storage::{DataType, SchemaBuilder, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for the skewed TPC-H generator.
#[derive(Debug, Clone, Copy)]
pub struct TpchConfig {
    /// Micro scale factor: 1.0 ⇒ 60 000 fact rows.
    pub scale_factor: f64,
    /// Zipf skew parameter `z` applied to every skewed attribute
    /// (the paper sweeps z ∈ {1.0, 1.5, 2.0, 2.5}).
    pub zipf_z: f64,
    /// RNG seed; generation is fully deterministic.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            scale_factor: 1.0,
            zipf_z: 2.0,
            seed: 42,
        }
    }
}

impl TpchConfig {
    /// Conventional name, mirroring the paper: `TPCH{sf}G{z}z`.
    pub fn name(&self) -> String {
        format!("TPCH{}G{}z", self.scale_factor, self.zipf_z)
    }

    fn rows(&self, base: usize) -> usize {
        ((base as f64 * self.scale_factor).round() as usize).max(1)
    }
}

/// Generate the skewed TPC-H star schema.
pub fn gen_tpch(cfg: &TpchConfig) -> QueryResult<StarSchema> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let z = cfg.zipf_z;

    let n_part = cfg.rows(2_000);
    let n_supp = cfg.rows(200);
    let n_cust = cfg.rows(3_000);
    let n_ord = cfg.rows(15_000);
    let n_line = cfg.rows(60_000);

    // ---- PART ----
    let part_schema = SchemaBuilder::new()
        .field("part.partkey", DataType::Int64)
        .field("part.brand", DataType::Utf8)
        .field("part.type", DataType::Utf8)
        .field("part.container", DataType::Utf8)
        .field("part.mfgr", DataType::Utf8)
        .field("part.size", DataType::Int64)
        .field("part.retailprice", DataType::Float64)
        .build()?;
    let brand = CategoricalPool::new("BRAND", 25, z);
    let ptype = CategoricalPool::new("TYPE", 50, z);
    let container = CategoricalPool::new("CONT", 40, z);
    let mfgr = CategoricalPool::new("MFGR", 5, z);
    let psize = IntPool::new(50, z);
    let mut part = Table::empty("part", part_schema);
    for pk in 1..=n_part as i64 {
        part.push_row(&[
            pk.into(),
            brand.sample(&mut rng).into(),
            ptype.sample(&mut rng).into(),
            container.sample(&mut rng).into(),
            mfgr.sample(&mut rng).into(),
            psize.sample(&mut rng).into(),
            pareto(&mut rng, 900.0, 2.0, 20.0).into(),
        ])?;
    }

    // ---- SUPPLIER ----
    let supp_schema = SchemaBuilder::new()
        .field("supplier.suppkey", DataType::Int64)
        .field("supplier.nation", DataType::Utf8)
        .field("supplier.region", DataType::Utf8)
        .field("supplier.acctbal", DataType::Float64)
        .build()?;
    let s_nation = CategoricalPool::new("NATION", 25, z);
    let s_region = CategoricalPool::new("REGION", 5, z);
    let mut supplier = Table::empty("supplier", supp_schema);
    for pk in 1..=n_supp as i64 {
        supplier.push_row(&[
            pk.into(),
            s_nation.sample(&mut rng).into(),
            s_region.sample(&mut rng).into(),
            pareto(&mut rng, 100.0, 1.2, 100.0).into(),
        ])?;
    }

    // ---- CUSTOMER ----
    let cust_schema = SchemaBuilder::new()
        .field("customer.custkey", DataType::Int64)
        .field("customer.nation", DataType::Utf8)
        .field("customer.segment", DataType::Utf8)
        .field("customer.acctbal", DataType::Float64)
        .build()?;
    let c_nation = CategoricalPool::new("NATION", 25, z);
    let c_segment = CategoricalPool::new("SEGMENT", 5, z);
    let mut customer = Table::empty("customer", cust_schema);
    for pk in 1..=n_cust as i64 {
        customer.push_row(&[
            pk.into(),
            c_nation.sample(&mut rng).into(),
            c_segment.sample(&mut rng).into(),
            pareto(&mut rng, 100.0, 1.2, 100.0).into(),
        ])?;
    }

    // ---- ORDERS ----
    let ord_schema = SchemaBuilder::new()
        .field("orders.orderkey", DataType::Int64)
        .field("orders.priority", DataType::Utf8)
        .field("orders.status", DataType::Utf8)
        .field("orders.year", DataType::Int64)
        .field("orders.month", DataType::Int64)
        // One distinct clerk per order: guaranteed to blow past τ so the
        // distinct-value cut-off path gets exercised.
        .field("orders.clerk", DataType::Utf8)
        .build()?;
    let priority = CategoricalPool::new("PRIO", 5, z);
    let status = CategoricalPool::new("STATUS", 3, z);
    let year = IntPool::new(7, z);
    let month = IntPool::new(12, z);
    let mut orders = Table::empty("orders", ord_schema);
    for pk in 1..=n_ord as i64 {
        orders.push_row(&[
            pk.into(),
            priority.sample(&mut rng).into(),
            status.sample(&mut rng).into(),
            (1995 + year.sample(&mut rng)).into(),
            month.sample(&mut rng).into(),
            format!("CLERK#{pk:07}").into(),
        ])?;
    }

    // ---- LINEITEM (fact) ----
    let line_schema = SchemaBuilder::new()
        .field("lineitem.orderkey", DataType::Int64)
        .field("lineitem.partkey", DataType::Int64)
        .field("lineitem.suppkey", DataType::Int64)
        .field("lineitem.custkey", DataType::Int64)
        .field("lineitem.quantity", DataType::Int64)
        .field("lineitem.extendedprice", DataType::Float64)
        .field("lineitem.discount", DataType::Float64)
        .field("lineitem.tax", DataType::Float64)
        .field("lineitem.returnflag", DataType::Utf8)
        .field("lineitem.linestatus", DataType::Utf8)
        .field("lineitem.shipmode", DataType::Utf8)
        .field("lineitem.shipyear", DataType::Int64)
        .field("lineitem.shipmonth", DataType::Int64)
        .build()?;
    // Skewed foreign keys: hot parts/suppliers/customers/orders.
    let fk_ord = IntPool::new(n_ord, z);
    let fk_part = IntPool::new(n_part, z);
    let fk_supp = IntPool::new(n_supp, z);
    let fk_cust = IntPool::new(n_cust, z);
    let quantity = IntPool::new(50, z);
    let discount_rank = IntPool::new(11, z);
    let tax_rank = IntPool::new(9, z);
    let returnflag = CategoricalPool::new("RF", 3, z);
    let linestatus = CategoricalPool::new("LS", 2, z);
    let shipmode = CategoricalPool::new("SHIP", 7, z);
    let shipyear = IntPool::new(7, z);
    let shipmonth = IntPool::new(12, z);

    let mut lineitem = Table::empty("lineitem", line_schema);
    for _ in 0..n_line {
        let qty = quantity.sample(&mut rng);
        let price = qty as f64 * pareto(&mut rng, 90.0, 1.5, 100.0);
        lineitem.push_row(&[
            fk_ord.sample(&mut rng).into(),
            fk_part.sample(&mut rng).into(),
            fk_supp.sample(&mut rng).into(),
            fk_cust.sample(&mut rng).into(),
            qty.into(),
            price.into(),
            (discount_rank.sample_rank(&mut rng) as f64 / 100.0).into(),
            (tax_rank.sample_rank(&mut rng) as f64 / 100.0).into(),
            returnflag.sample(&mut rng).into(),
            linestatus.sample(&mut rng).into(),
            shipmode.sample(&mut rng).into(),
            (1995 + shipyear.sample(&mut rng)).into(),
            shipmonth.sample(&mut rng).into(),
        ])?;
    }

    StarSchema::new(
        lineitem,
        vec![
            Dimension::new(orders, "orders.orderkey", "lineitem.orderkey"),
            Dimension::new(part, "part.partkey", "lineitem.partkey"),
            Dimension::new(supplier, "supplier.suppkey", "lineitem.suppkey"),
            Dimension::new(customer, "customer.custkey", "lineitem.custkey"),
        ],
    )
}

/// Measure columns suitable for SUM aggregation in generated queries.
pub const TPCH_MEASURE_COLUMNS: &[&str] = &[
    "lineitem.quantity",
    "lineitem.extendedprice",
    "lineitem.discount",
    "part.retailprice",
];

/// Columns that should be excluded from grouping (keys and near-unique
/// columns, per the paper's workload rules).
pub const TPCH_EXCLUDED_GROUPING: &[&str] = &[
    "lineitem.orderkey",
    "lineitem.partkey",
    "lineitem.suppkey",
    "lineitem.custkey",
    "lineitem.extendedprice",
    "lineitem.discount",
    "lineitem.tax",
    "orders.orderkey",
    "orders.clerk",
    "part.partkey",
    "part.retailprice",
    "supplier.suppkey",
    "supplier.acctbal",
    "customer.custkey",
    "customer.acctbal",
];

#[cfg(test)]
mod tests {
    use super::*;
    use aqp_query::{execute, DataSource, ExecOptions, Query};

    fn tiny() -> StarSchema {
        gen_tpch(&TpchConfig {
            scale_factor: 0.05,
            zipf_z: 1.5,
            seed: 7,
        })
        .unwrap()
    }

    #[test]
    fn shapes_scale_with_factor() {
        let s = tiny();
        assert_eq!(s.fact().num_rows(), 3_000);
        assert_eq!(s.num_dimensions(), 4);
        assert_eq!(s.dimension(0).num_rows(), 750); // orders
        assert_eq!(s.dimension(1).num_rows(), 100); // part
        assert_eq!(s.dimension(2).num_rows(), 10); // supplier
        assert_eq!(s.dimension(3).num_rows(), 150); // customer
    }

    #[test]
    fn deterministic_given_seed() {
        let a = tiny();
        let b = tiny();
        let pk_a = a.fact().column_by_name("lineitem.partkey").unwrap();
        let pk_b = b.fact().column_by_name("lineitem.partkey").unwrap();
        assert_eq!(pk_a.as_int64().unwrap(), pk_b.as_int64().unwrap());
        // Different seed differs.
        let c = gen_tpch(&TpchConfig {
            scale_factor: 0.05,
            zipf_z: 1.5,
            seed: 8,
        })
        .unwrap();
        let pk_c = c.fact().column_by_name("lineitem.partkey").unwrap();
        assert_ne!(pk_a.as_int64().unwrap(), pk_c.as_int64().unwrap());
    }

    #[test]
    fn queries_run_against_star_and_wide() {
        let s = tiny();
        let q = Query::builder()
            .count()
            .sum("lineitem.extendedprice")
            .group_by("part.brand")
            .build()
            .unwrap();
        let out = execute(&DataSource::Star(&s), &q, &ExecOptions::default()).unwrap();
        assert!(out.num_groups() > 0);
        let total: u64 = out.groups.iter().map(|g| g.aggs[0].rows).sum();
        assert_eq!(total, 3_000);

        let wide = s.denormalize("wide").unwrap();
        let out2 = execute(&DataSource::Wide(&wide), &q, &ExecOptions::default()).unwrap();
        assert_eq!(out.num_groups(), out2.num_groups());
    }

    #[test]
    fn skew_is_visible() {
        // At z = 2 the top brand should dominate; at z = 0 it should not.
        let skewed = gen_tpch(&TpchConfig {
            scale_factor: 0.05,
            zipf_z: 2.0,
            seed: 7,
        })
        .unwrap();
        let flat = gen_tpch(&TpchConfig {
            scale_factor: 0.05,
            zipf_z: 0.0,
            seed: 7,
        })
        .unwrap();
        let top_share = |s: &StarSchema| {
            let q = Query::builder().count().group_by("lineitem.shipmode").build().unwrap();
            let out = execute(&DataSource::Star(s), &q, &ExecOptions::default()).unwrap();
            let max = out.groups.iter().map(|g| g.aggs[0].rows).max().unwrap();
            max as f64 / s.fact().num_rows() as f64
        };
        assert!(top_share(&skewed) > 0.6, "skewed share {}", top_share(&skewed));
        assert!(top_share(&flat) < 0.3, "flat share {}", top_share(&flat));
    }

    #[test]
    fn name_convention() {
        let cfg = TpchConfig {
            scale_factor: 1.0,
            zipf_z: 2.0,
            seed: 0,
        };
        assert_eq!(cfg.name(), "TPCH1G2z");
    }

    #[test]
    fn measure_columns_exist_and_are_numeric() {
        let s = tiny();
        let wide = s.denormalize("w").unwrap();
        for m in TPCH_MEASURE_COLUMNS {
            let f = wide.schema().field(m).unwrap();
            assert!(f.data_type.is_numeric(), "{m}");
        }
        for c in TPCH_EXCLUDED_GROUPING {
            assert!(wide.schema().contains(c), "{c}");
        }
    }
}
