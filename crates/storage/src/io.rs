//! Binary table persistence.
//!
//! The paper's pre-processing phase writes its sample tables to disk so
//! the runtime phase can use them across sessions ("the samples are
//! created ... and stored in the database along with metadata"). This
//! module provides a compact, self-describing little-endian binary codec
//! for [`Table`]s — columns, dictionaries, null masks, and the sample
//! bitmask column — plus file convenience wrappers.
//!
//! Format (version 1):
//!
//! ```text
//! magic "AQPT" | u16 version | name | schema | u64 rows
//! per column: u8 type tag | null mask | payload
//! u8 bitmask-present | (u32 width | rows*width u64 words)
//! ```
//!
//! Strings are `u32` length + UTF-8 bytes; vectors are `u64` count +
//! elements.

use crate::bitmask::{BitSet, BitmaskColumn};
use crate::column::Column;
use crate::error::{StorageError, StorageResult};
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::DataType;
use bytes::{Buf, BufMut, BytesMut};

const MAGIC: &[u8; 4] = b"AQPT";
const VERSION: u16 = 1;

fn corrupt(msg: impl Into<String>) -> StorageError {
    StorageError::Codec(msg.into())
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> StorageResult<String> {
    if buf.remaining() < 4 {
        return Err(corrupt("truncated string length"));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(corrupt("truncated string payload"));
    }
    let s = std::str::from_utf8(&buf[..len])
        .map_err(|_| corrupt("invalid UTF-8 in string"))?
        .to_owned();
    buf.advance(len);
    Ok(s)
}

fn type_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Int64 => 0,
        DataType::Float64 => 1,
        DataType::Utf8 => 2,
        DataType::Bool => 3,
    }
}

fn tag_type(tag: u8) -> StorageResult<DataType> {
    Ok(match tag {
        0 => DataType::Int64,
        1 => DataType::Float64,
        2 => DataType::Utf8,
        3 => DataType::Bool,
        other => return Err(corrupt(format!("unknown type tag {other}"))),
    })
}

/// Append one dynamically-typed value to a buffer (tag byte + payload).
pub fn put_value(buf: &mut BytesMut, value: &crate::value::Value) {
    use crate::value::Value;
    match value {
        Value::Null => buf.put_u8(0),
        Value::Int64(v) => {
            buf.put_u8(1);
            buf.put_i64_le(*v);
        }
        Value::Float64(v) => {
            buf.put_u8(2);
            buf.put_f64_le(*v);
        }
        Value::Utf8(s) => {
            buf.put_u8(3);
            put_str(buf, s);
        }
        Value::Bool(b) => {
            buf.put_u8(4);
            buf.put_u8(*b as u8);
        }
    }
}

/// Decode one value written by [`put_value`].
pub fn get_value(buf: &mut &[u8]) -> StorageResult<crate::value::Value> {
    use crate::value::Value;
    if buf.remaining() < 1 {
        return Err(corrupt("truncated value tag"));
    }
    Ok(match buf.get_u8() {
        0 => Value::Null,
        1 => {
            if buf.remaining() < 8 {
                return Err(corrupt("truncated int value"));
            }
            Value::Int64(buf.get_i64_le())
        }
        2 => {
            if buf.remaining() < 8 {
                return Err(corrupt("truncated float value"));
            }
            Value::Float64(buf.get_f64_le())
        }
        3 => Value::Utf8(get_str(buf)?),
        4 => {
            if buf.remaining() < 1 {
                return Err(corrupt("truncated bool value"));
            }
            Value::Bool(buf.get_u8() != 0)
        }
        other => return Err(corrupt(format!("unknown value tag {other}"))),
    })
}

/// Append a length-prefixed string (public for sibling codecs).
pub fn put_string(buf: &mut BytesMut, s: &str) {
    put_str(buf, s);
}

/// Decode a string written by [`put_string`].
pub fn get_string(buf: &mut &[u8]) -> StorageResult<String> {
    get_str(buf)
}

/// Encode a table to bytes.
pub fn encode_table(table: &Table) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(table.byte_size() + 1024);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    put_str(&mut buf, table.name());

    // Schema.
    buf.put_u32_le(table.schema().len() as u32);
    for f in table.schema().fields() {
        put_str(&mut buf, &f.name);
        buf.put_u8(type_tag(f.data_type));
    }
    let rows = table.num_rows();
    buf.put_u64_le(rows as u64);

    // Columns.
    for col in table.columns() {
        buf.put_u8(type_tag(col.data_type()));
        // Null mask: packed bits, omitted entirely when fully valid.
        let has_nulls = col.null_count() > 0;
        buf.put_u8(has_nulls as u8);
        if has_nulls {
            let mut word = 0u64;
            for row in 0..rows {
                if col.is_null(row) {
                    word |= 1 << (row % 64);
                }
                if row % 64 == 63 {
                    buf.put_u64_le(word);
                    word = 0;
                }
            }
            if !rows.is_multiple_of(64) {
                buf.put_u64_le(word);
            }
        }
        match col {
            Column::Int64 { data, .. } => {
                for v in data {
                    buf.put_i64_le(*v);
                }
            }
            Column::Float64 { data, .. } => {
                for v in data {
                    buf.put_f64_le(*v);
                }
            }
            Column::Utf8 { codes, dict, .. } => {
                buf.put_u32_le(dict.len() as u32);
                for (_, s) in dict.iter() {
                    put_str(&mut buf, s);
                }
                for c in codes {
                    buf.put_u32_le(*c);
                }
            }
            Column::Bool { data, .. } => {
                for v in data {
                    buf.put_u8(*v as u8);
                }
            }
        }
    }

    // Bitmask column.
    match table.bitmask() {
        Some(bm) => {
            buf.put_u8(1);
            buf.put_u32_le(bm.width() as u32);
            for row in 0..bm.len() {
                for w in bm.row(row).words().iter().take(bm.width()) {
                    buf.put_u64_le(*w);
                }
            }
        }
        None => buf.put_u8(0),
    }

    buf.to_vec()
}

/// Decode a table from bytes produced by [`encode_table`].
pub fn decode_table(bytes: &[u8]) -> StorageResult<Table> {
    let mut buf = bytes;
    if buf.remaining() < 6 || &buf[..4] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    buf.advance(4);
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(corrupt(format!("unsupported version {version}")));
    }
    let name = get_str(&mut buf)?;

    // Schema.
    if buf.remaining() < 4 {
        return Err(corrupt("truncated schema"));
    }
    let num_fields = buf.get_u32_le() as usize;
    // Cap pre-allocations by the bytes actually present: corrupt counts
    // must fail element-by-element with a clean error, not abort on an
    // absurd allocation.
    let mut fields = Vec::with_capacity(num_fields.min(buf.remaining()));
    for _ in 0..num_fields {
        let fname = get_str(&mut buf)?;
        if buf.remaining() < 1 {
            return Err(corrupt("truncated field type"));
        }
        let dt = tag_type(buf.get_u8())?;
        fields.push(Field::new(fname, dt));
    }
    let schema = Schema::new(fields)?;
    if buf.remaining() < 8 {
        return Err(corrupt("truncated row count"));
    }
    let rows = buf.get_u64_le() as usize;

    // Columns.
    let mut columns = Vec::with_capacity(num_fields);
    for field in schema.fields() {
        if buf.remaining() < 2 {
            return Err(corrupt("truncated column header"));
        }
        let dt = tag_type(buf.get_u8())?;
        if dt != field.data_type {
            return Err(corrupt(format!(
                "column {:?}: stored type {dt:?} != schema {:?}",
                field.name, field.data_type
            )));
        }
        let has_nulls = buf.get_u8() != 0;
        let null_words = if has_nulls {
            let n_words = rows.div_ceil(64);
            if n_words.checked_mul(8).is_none_or(|b| buf.remaining() < b) {
                return Err(corrupt("truncated null mask"));
            }
            let mut words = Vec::with_capacity(n_words);
            for _ in 0..n_words {
                words.push(buf.get_u64_le());
            }
            Some(words)
        } else {
            None
        };
        let is_null = |row: usize| -> bool {
            null_words
                .as_ref()
                .is_some_and(|w| (w[row / 64] >> (row % 64)) & 1 == 1)
        };

        let mut col = Column::new(dt);
        match dt {
            DataType::Int64 => {
                if rows.checked_mul(8).is_none_or(|b| buf.remaining() < b) {
                    return Err(corrupt("truncated int column"));
                }
                for row in 0..rows {
                    let v = buf.get_i64_le();
                    if is_null(row) {
                        col.push_null();
                    } else {
                        col.push(crate::value::ValueRef::Int64(v))?;
                    }
                }
            }
            DataType::Float64 => {
                if rows.checked_mul(8).is_none_or(|b| buf.remaining() < b) {
                    return Err(corrupt("truncated float column"));
                }
                for row in 0..rows {
                    let v = buf.get_f64_le();
                    if is_null(row) {
                        col.push_null();
                    } else {
                        col.push(crate::value::ValueRef::Float64(v))?;
                    }
                }
            }
            DataType::Utf8 => {
                if buf.remaining() < 4 {
                    return Err(corrupt("truncated dictionary"));
                }
                let dict_len = buf.get_u32_le() as usize;
                let mut dict_strings = Vec::with_capacity(dict_len.min(buf.remaining()));
                for _ in 0..dict_len {
                    dict_strings.push(get_str(&mut buf)?);
                }
                if rows.checked_mul(4).is_none_or(|b| buf.remaining() < b) {
                    return Err(corrupt("truncated codes"));
                }
                for row in 0..rows {
                    let code = buf.get_u32_le() as usize;
                    if is_null(row) {
                        col.push_null();
                    } else {
                        let s = dict_strings
                            .get(code)
                            .ok_or_else(|| corrupt(format!("dictionary code {code} out of range")))?;
                        col.push(crate::value::ValueRef::Utf8(s))?;
                    }
                }
            }
            DataType::Bool => {
                if buf.remaining() < rows {
                    return Err(corrupt("truncated bool column"));
                }
                for row in 0..rows {
                    let v = buf.get_u8() != 0;
                    if is_null(row) {
                        col.push_null();
                    } else {
                        col.push(crate::value::ValueRef::Bool(v))?;
                    }
                }
            }
        }
        columns.push(col);
    }

    let mut table = Table::from_columns(name, schema, columns)?;

    // Bitmask column.
    if buf.remaining() < 1 {
        return Err(corrupt("truncated bitmask flag"));
    }
    if buf.get_u8() != 0 {
        if buf.remaining() < 4 {
            return Err(corrupt("truncated bitmask width"));
        }
        let width = buf.get_u32_le() as usize;
        if rows
            .checked_mul(width)
            .and_then(|w| w.checked_mul(8))
            .is_none_or(|b| buf.remaining() < b)
        {
            return Err(corrupt("truncated bitmask words"));
        }
        let mut bm = BitmaskColumn::new(width * 64);
        for _ in 0..rows {
            let mut words = Vec::with_capacity(width);
            for _ in 0..width {
                words.push(buf.get_u64_le());
            }
            bm.push(&BitSet::from_raw_words(words));
        }
        table.attach_bitmask(bm)?;
    }

    if buf.has_remaining() {
        return Err(corrupt(format!("{} trailing bytes", buf.remaining())));
    }
    Ok(table)
}

/// Write a table to a file.
pub fn write_table_file(table: &Table, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    std::fs::write(path, encode_table(table))
}

/// Read a table from a file.
pub fn read_table_file(path: impl AsRef<std::path::Path>) -> std::io::Result<Table> {
    let bytes = std::fs::read(path)?;
    decode_table(&bytes).map_err(std::io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::Value;

    fn sample_table() -> Table {
        let schema = SchemaBuilder::new()
            .field("id", DataType::Int64)
            .field("price", DataType::Float64)
            .field("name", DataType::Utf8)
            .field("active", DataType::Bool)
            .build()
            .unwrap();
        let mut t = Table::empty("demo", schema);
        t.push_row(&[1i64.into(), 9.5f64.into(), "tv".into(), true.into()]).unwrap();
        t.push_row(&[2i64.into(), Value::Null, "stereo".into(), false.into()]).unwrap();
        t.push_row(&[Value::Null, 3.25f64.into(), Value::Null, Value::Null]).unwrap();
        t.push_row(&[4i64.into(), (-0.0f64).into(), "tv".into(), true.into()]).unwrap();
        t
    }

    fn assert_tables_equal(a: &Table, b: &Table) {
        assert_eq!(a.name(), b.name());
        assert_eq!(a.schema(), b.schema());
        assert_eq!(a.num_rows(), b.num_rows());
        for row in 0..a.num_rows() {
            for col in 0..a.schema().len() {
                assert_eq!(
                    a.value(row, col).to_owned(),
                    b.value(row, col).to_owned(),
                    "cell ({row}, {col})"
                );
            }
        }
        match (a.bitmask(), b.bitmask()) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert_eq!(x.len(), y.len());
                for row in 0..x.len() {
                    assert_eq!(x.row(row), y.row(row), "bitmask row {row}");
                }
            }
            _ => panic!("bitmask presence differs"),
        }
    }

    #[test]
    fn roundtrip_plain_table() {
        let t = sample_table();
        let bytes = encode_table(&t);
        let back = decode_table(&bytes).unwrap();
        assert_tables_equal(&t, &back);
    }

    #[test]
    fn roundtrip_empty_table() {
        let schema = SchemaBuilder::new().field("x", DataType::Utf8).build().unwrap();
        let t = Table::empty("empty", schema);
        let back = decode_table(&encode_table(&t)).unwrap();
        assert_eq!(back.num_rows(), 0);
        assert_eq!(back.name(), "empty");
    }

    #[test]
    fn roundtrip_with_bitmask() {
        let src = sample_table();
        let mut t = Table::empty("s", src.schema().clone());
        t.enable_bitmask(130); // 3 words per row
        t.push_row_from_with_mask(&src, 0, &BitSet::from_bits(130, [0, 129])).unwrap();
        t.push_row_from_with_mask(&src, 1, &BitSet::from_bits(130, [64])).unwrap();
        let back = decode_table(&encode_table(&t)).unwrap();
        assert_tables_equal(&t, &back);
        assert!(back.bitmask().unwrap().row(0).contains(129));
    }

    #[test]
    fn roundtrip_long_table_null_mask() {
        // > 64 rows exercises multi-word null masks.
        let schema = SchemaBuilder::new().field("v", DataType::Int64).build().unwrap();
        let mut t = Table::empty("long", schema);
        for i in 0..200i64 {
            if i % 7 == 0 {
                t.push_row(&[Value::Null]).unwrap();
            } else {
                t.push_row(&[i.into()]).unwrap();
            }
        }
        let back = decode_table(&encode_table(&t)).unwrap();
        assert_tables_equal(&t, &back);
    }

    #[test]
    fn corruption_detected() {
        let t = sample_table();
        let good = encode_table(&t);

        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(decode_table(&bad), Err(StorageError::Codec(_))));

        // Bad version.
        let mut bad = good.clone();
        bad[4] = 99;
        assert!(decode_table(&bad).is_err());

        // Truncation at every prefix must error, never panic.
        for len in 0..good.len() {
            assert!(decode_table(&good[..len]).is_err(), "prefix {len}");
        }

        // Trailing garbage.
        let mut bad = good.clone();
        bad.push(0);
        assert!(decode_table(&bad).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let t = sample_table();
        let dir = std::env::temp_dir().join(format!("aqp_io_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo.aqpt");
        write_table_file(&t, &path).unwrap();
        let back = read_table_file(&path).unwrap();
        assert_tables_equal(&t, &back);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn value_codec_roundtrip() {
        let values = [
            Value::Null,
            Value::Int64(-42),
            Value::Float64(2.5),
            Value::Float64(f64::NAN),
            Value::Utf8("héllo".into()),
            Value::Bool(true),
        ];
        let mut buf = BytesMut::new();
        for v in &values {
            put_value(&mut buf, v);
        }
        let bytes = buf.to_vec();
        let mut slice = bytes.as_slice();
        for v in &values {
            let back = get_value(&mut slice).unwrap();
            assert_eq!(&back, v);
        }
        assert!(!slice.has_remaining());
        // Truncations error.
        for len in 0..bytes.len() {
            let mut s = &bytes[..len];
            let mut ok = true;
            for _ in 0..values.len() {
                if get_value(&mut s).is_err() {
                    ok = false;
                    break;
                }
            }
            assert!(!ok, "prefix {len} decoded fully");
        }
    }

    #[test]
    fn negative_zero_preserved() {
        // -0.0 and 0.0 differ bitwise and must survive the roundtrip
        // (group keys distinguish them).
        let t = sample_table();
        let back = decode_table(&encode_table(&t)).unwrap();
        let col = back.column_by_name("price").unwrap();
        let v = col.as_float64().unwrap()[3];
        assert!(v == 0.0 && v.is_sign_negative());
    }
}
