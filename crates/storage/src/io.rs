//! Binary table persistence.
//!
//! The paper's pre-processing phase writes its sample tables to disk so
//! the runtime phase can use them across sessions ("the samples are
//! created ... and stored in the database along with metadata"). This
//! module provides a compact, self-describing little-endian binary codec
//! for [`Table`]s — columns, dictionaries, null masks, and the sample
//! bitmask column — plus file convenience wrappers.
//!
//! Format (version 3):
//!
//! ```text
//! magic "AQPT" | u16 version | u32 crc32c of the core payload
//! u64 core_len
//! core payload: name | schema | u64 rows
//!               per column: u8 type tag | null mask | payload
//!               u8 bitmask-present | (u32 width | rows*width u64 words)
//! zone section (optional): u32 crc32c of zone bytes | u64 zone_len
//!               zone bytes: per-block column summaries (zone maps)
//! ```
//!
//! Strings are `u32` length + UTF-8 bytes; vectors are `u64` count +
//! elements. The header checksum covers every core-payload byte, so any
//! core corruption — truncation, bit rot — is detected on load
//! ([`StorageError::ChecksumMismatch`]) instead of misparsing. The zone
//! section carries its **own** CRC because zone maps are derived data: a
//! corrupt zone section silently degrades to "no persisted maps" (the
//! table recomputes them on demand) instead of failing the load, while
//! corruption anywhere in the actual data still hard-fails. Version-2
//! files (no zone section, checksum over the whole remaining payload)
//! decode unchanged and recompute their summaries lazily.
//!
//! File writes go through [`fault::write_file_atomic`] (temp file +
//! rename), and corrupt files are quarantined to `<path>.corrupt` on load
//! so a bad file is never re-read in a loop.
//!
//! [`fault::write_file_atomic`]: crate::fault::write_file_atomic

use crate::bitmask::{BitSet, BitmaskColumn};
use crate::column::Column;
use crate::crc::crc32c;
use crate::error::{StorageError, StorageResult};
use crate::fault;
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::DataType;
use crate::zonemap::{BlockBounds, BlockSummary, ColumnZoneMap, ZoneMaps};
use bytes::{Buf, BufMut, BytesMut};
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"AQPT";
const VERSION: u16 = 3;
/// The previous format: no zone section, header crc over all remaining bytes.
const VERSION_V2: u16 = 2;
/// magic (4) + version (2) + crc32c (4).
const HEADER_LEN: usize = 10;

fn corrupt(msg: impl Into<String>) -> StorageError {
    StorageError::Codec(msg.into())
}

fn put_str(buf: &mut BytesMut, s: &str) -> StorageResult<()> {
    let len = u32::try_from(s.len()).map_err(|_| {
        corrupt(format!(
            "string of {} bytes exceeds the 4 GiB codec limit",
            s.len()
        ))
    })?;
    buf.put_u32_le(len);
    buf.put_slice(s.as_bytes());
    Ok(())
}

fn get_str(buf: &mut &[u8]) -> StorageResult<String> {
    if buf.remaining() < 4 {
        return Err(corrupt("truncated string length"));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(corrupt("truncated string payload"));
    }
    let s = std::str::from_utf8(&buf[..len])
        .map_err(|_| corrupt("invalid UTF-8 in string"))?
        .to_owned();
    buf.advance(len);
    Ok(s)
}

fn type_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Int64 => 0,
        DataType::Float64 => 1,
        DataType::Utf8 => 2,
        DataType::Bool => 3,
    }
}

fn tag_type(tag: u8) -> StorageResult<DataType> {
    Ok(match tag {
        0 => DataType::Int64,
        1 => DataType::Float64,
        2 => DataType::Utf8,
        3 => DataType::Bool,
        other => return Err(corrupt(format!("unknown type tag {other}"))),
    })
}

/// Append one dynamically-typed value to a buffer (tag byte + payload).
pub fn put_value(buf: &mut BytesMut, value: &crate::value::Value) -> StorageResult<()> {
    use crate::value::Value;
    match value {
        Value::Null => buf.put_u8(0),
        Value::Int64(v) => {
            buf.put_u8(1);
            buf.put_i64_le(*v);
        }
        Value::Float64(v) => {
            buf.put_u8(2);
            buf.put_f64_le(*v);
        }
        Value::Utf8(s) => {
            buf.put_u8(3);
            put_str(buf, s)?;
        }
        Value::Bool(b) => {
            buf.put_u8(4);
            buf.put_u8(*b as u8);
        }
    }
    Ok(())
}

/// Decode one value written by [`put_value`].
pub fn get_value(buf: &mut &[u8]) -> StorageResult<crate::value::Value> {
    use crate::value::Value;
    if buf.remaining() < 1 {
        return Err(corrupt("truncated value tag"));
    }
    Ok(match buf.get_u8() {
        0 => Value::Null,
        1 => {
            if buf.remaining() < 8 {
                return Err(corrupt("truncated int value"));
            }
            Value::Int64(buf.get_i64_le())
        }
        2 => {
            if buf.remaining() < 8 {
                return Err(corrupt("truncated float value"));
            }
            Value::Float64(buf.get_f64_le())
        }
        3 => Value::Utf8(get_str(buf)?),
        4 => {
            if buf.remaining() < 1 {
                return Err(corrupt("truncated bool value"));
            }
            Value::Bool(buf.get_u8() != 0)
        }
        other => return Err(corrupt(format!("unknown value tag {other}"))),
    })
}

/// Append a length-prefixed string (public for sibling codecs).
pub fn put_string(buf: &mut BytesMut, s: &str) -> StorageResult<()> {
    put_str(buf, s)
}

/// Decode a string written by [`put_string`].
pub fn get_string(buf: &mut &[u8]) -> StorageResult<String> {
    get_str(buf)
}

/// Encode a table to bytes (checksummed v3 format, zone maps included).
///
/// Zone maps are computed here if the table does not already carry them:
/// persisting a table is the "build time" at which summaries are attached,
/// so every written file ships prunable summaries.
pub fn encode_table(table: &Table) -> StorageResult<Vec<u8>> {
    let core = encode_core(table)?;
    let zone = encode_zone_maps(table.zone_maps());
    let mut out = Vec::with_capacity(HEADER_LEN + 8 + core.len() + 12 + zone.len());
    out.put_slice(MAGIC);
    out.put_u16_le(VERSION);
    out.put_u32_le(crc32c(&core));
    out.put_u64_le(core.len() as u64);
    out.extend_from_slice(&core);
    out.put_u32_le(crc32c(&zone));
    out.put_u64_le(zone.len() as u64);
    out.extend_from_slice(&zone);
    Ok(out)
}

/// Encode the core payload (name, schema, columns, bitmask) — the layout
/// shared verbatim with format v2.
fn encode_core(table: &Table) -> StorageResult<Vec<u8>> {
    let mut buf = BytesMut::with_capacity(table.byte_size() + 1024);
    put_str(&mut buf, table.name())?;

    // Schema.
    buf.put_u32_le(table.schema().len() as u32);
    for f in table.schema().fields() {
        put_str(&mut buf, &f.name)?;
        buf.put_u8(type_tag(f.data_type));
    }
    let rows = table.num_rows();
    buf.put_u64_le(rows as u64);

    // Columns.
    for col in table.columns() {
        buf.put_u8(type_tag(col.data_type()));
        // Null mask: packed bits, omitted entirely when fully valid.
        let has_nulls = col.null_count() > 0;
        buf.put_u8(has_nulls as u8);
        if has_nulls {
            let mut word = 0u64;
            for row in 0..rows {
                if col.is_null(row) {
                    word |= 1 << (row % 64);
                }
                if row % 64 == 63 {
                    buf.put_u64_le(word);
                    word = 0;
                }
            }
            if !rows.is_multiple_of(64) {
                buf.put_u64_le(word);
            }
        }
        match col {
            Column::Int64 { data, .. } => {
                for v in data {
                    buf.put_i64_le(*v);
                }
            }
            Column::Float64 { data, .. } => {
                for v in data {
                    buf.put_f64_le(*v);
                }
            }
            Column::Utf8 { codes, dict, .. } => {
                buf.put_u32_le(dict.len() as u32);
                for (_, s) in dict.iter() {
                    put_str(&mut buf, s)?;
                }
                for c in codes {
                    buf.put_u32_le(*c);
                }
            }
            Column::Bool { data, .. } => {
                for v in data {
                    buf.put_u8(*v as u8);
                }
            }
        }
    }

    // Bitmask column.
    match table.bitmask() {
        Some(bm) => {
            buf.put_u8(1);
            buf.put_u32_le(bm.width() as u32);
            for row in 0..bm.len() {
                for w in bm.row(row).words().iter().take(bm.width()) {
                    buf.put_u64_le(*w);
                }
            }
        }
        None => buf.put_u8(0),
    }

    Ok(buf.to_vec())
}

/// Encode zone maps for the trailing file section.
fn encode_zone_maps(maps: &ZoneMaps) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_u32_le(maps.block_rows as u32);
    buf.put_u64_le(maps.rows as u64);
    buf.put_u32_le(maps.columns.len() as u32);
    for col in &maps.columns {
        buf.put_u32_le(col.blocks.len() as u32);
        for block in &col.blocks {
            buf.put_u32_le(block.rows);
            buf.put_u32_le(block.null_count);
            match &block.bounds {
                None => buf.put_u8(0),
                Some(BlockBounds::Int { min, max }) => {
                    buf.put_u8(1);
                    buf.put_i64_le(*min);
                    buf.put_i64_le(*max);
                }
                Some(BlockBounds::Float { min, max }) => {
                    buf.put_u8(2);
                    buf.put_f64_le(*min);
                    buf.put_f64_le(*max);
                }
                Some(BlockBounds::Dict { words }) => {
                    buf.put_u8(3);
                    buf.put_u32_le(words.len() as u32);
                    for w in words {
                        buf.put_u64_le(*w);
                    }
                }
            }
        }
    }
    buf.to_vec()
}

/// Decode a zone section written by [`encode_zone_maps`]. Strict: any
/// inconsistency is an error (the caller degrades to "no maps").
fn decode_zone_maps(mut buf: &[u8]) -> StorageResult<ZoneMaps> {
    if buf.remaining() < 16 {
        return Err(corrupt("truncated zone header"));
    }
    let block_rows = buf.get_u32_le() as usize;
    let rows = buf.get_u64_le() as usize;
    let num_columns = buf.get_u32_le() as usize;
    let mut columns = Vec::with_capacity(num_columns.min(buf.remaining()));
    for _ in 0..num_columns {
        if buf.remaining() < 4 {
            return Err(corrupt("truncated zone column"));
        }
        let num_blocks = buf.get_u32_le() as usize;
        let mut blocks = Vec::with_capacity(num_blocks.min(buf.remaining()));
        for _ in 0..num_blocks {
            if buf.remaining() < 9 {
                return Err(corrupt("truncated zone block"));
            }
            let rows = buf.get_u32_le();
            let null_count = buf.get_u32_le();
            let bounds = match buf.get_u8() {
                0 => None,
                1 => {
                    if buf.remaining() < 16 {
                        return Err(corrupt("truncated int bounds"));
                    }
                    Some(BlockBounds::Int {
                        min: buf.get_i64_le(),
                        max: buf.get_i64_le(),
                    })
                }
                2 => {
                    if buf.remaining() < 16 {
                        return Err(corrupt("truncated float bounds"));
                    }
                    Some(BlockBounds::Float {
                        min: buf.get_f64_le(),
                        max: buf.get_f64_le(),
                    })
                }
                3 => {
                    if buf.remaining() < 4 {
                        return Err(corrupt("truncated dict bitmap length"));
                    }
                    let n = buf.get_u32_le() as usize;
                    if n.checked_mul(8).is_none_or(|b| buf.remaining() < b) {
                        return Err(corrupt("truncated dict bitmap"));
                    }
                    let mut words = Vec::with_capacity(n);
                    for _ in 0..n {
                        words.push(buf.get_u64_le());
                    }
                    Some(BlockBounds::Dict { words })
                }
                other => return Err(corrupt(format!("unknown bounds tag {other}"))),
            };
            blocks.push(BlockSummary {
                rows,
                null_count,
                bounds,
            });
        }
        columns.push(ColumnZoneMap { blocks });
    }
    if buf.has_remaining() {
        return Err(corrupt("trailing zone bytes"));
    }
    Ok(ZoneMaps {
        block_rows,
        rows,
        columns,
    })
}

/// Decode a table from bytes produced by [`encode_table`] (v3) or by the
/// previous v2 encoder, verifying the header checksum first. A corrupt
/// zone section never fails the load — the table simply arrives without
/// persisted summaries and recomputes them on first use.
pub fn decode_table(bytes: &[u8]) -> StorageResult<Table> {
    let mut buf = bytes;
    if buf.remaining() < 4 || &buf[..4] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    buf.advance(4);
    if buf.remaining() < 2 {
        return Err(corrupt("truncated version"));
    }
    let version = buf.get_u16_le();
    if version != VERSION && version != VERSION_V2 {
        return Err(StorageError::Version {
            found: version,
            supported: VERSION,
        });
    }
    if buf.remaining() < 4 {
        return Err(corrupt("truncated checksum"));
    }
    let expected = buf.get_u32_le();

    if version == VERSION_V2 {
        // v2: checksum over everything after the header, no zone section.
        let actual = crc32c(buf);
        if actual != expected {
            return Err(StorageError::ChecksumMismatch { expected, actual });
        }
        return decode_core(buf);
    }

    // v3: checksum over the length-prefixed core payload only.
    if buf.remaining() < 8 {
        return Err(corrupt("truncated core length"));
    }
    let core_len = buf.get_u64_le() as usize;
    if buf.remaining() < core_len {
        return Err(corrupt("truncated core payload"));
    }
    let (core, zone_section) = buf.split_at(core_len);
    let actual = crc32c(core);
    if actual != expected {
        return Err(StorageError::ChecksumMismatch { expected, actual });
    }
    let mut table = decode_core(core)?;
    if let Some(maps) = decode_zone_section(zone_section) {
        // Geometry mismatch is corruption too: fall back to lazy recompute.
        let _ = table.set_zone_maps(Arc::new(maps));
    }
    Ok(table)
}

/// Decode the optional trailing zone section. `None` on any corruption —
/// truncation, checksum mismatch, or malformed payload.
fn decode_zone_section(mut buf: &[u8]) -> Option<ZoneMaps> {
    if buf.remaining() < 12 {
        return None;
    }
    let expected = buf.get_u32_le();
    let zone_len = buf.get_u64_le() as usize;
    if buf.remaining() != zone_len {
        return None;
    }
    if crc32c(buf) != expected {
        return None;
    }
    decode_zone_maps(buf).ok()
}

/// Decode a core payload (the v2 whole-payload layout). Errors on any
/// malformed or trailing bytes.
fn decode_core(mut buf: &[u8]) -> StorageResult<Table> {
    let name = get_str(&mut buf)?;

    // Schema.
    if buf.remaining() < 4 {
        return Err(corrupt("truncated schema"));
    }
    let num_fields = buf.get_u32_le() as usize;
    // Cap pre-allocations by the bytes actually present: corrupt counts
    // must fail element-by-element with a clean error, not abort on an
    // absurd allocation.
    let mut fields = Vec::with_capacity(num_fields.min(buf.remaining()));
    for _ in 0..num_fields {
        let fname = get_str(&mut buf)?;
        if buf.remaining() < 1 {
            return Err(corrupt("truncated field type"));
        }
        let dt = tag_type(buf.get_u8())?;
        fields.push(Field::new(fname, dt));
    }
    let schema = Schema::new(fields)?;
    if buf.remaining() < 8 {
        return Err(corrupt("truncated row count"));
    }
    let rows = buf.get_u64_le() as usize;

    // Columns.
    let mut columns = Vec::with_capacity(num_fields);
    for field in schema.fields() {
        if buf.remaining() < 2 {
            return Err(corrupt("truncated column header"));
        }
        let dt = tag_type(buf.get_u8())?;
        if dt != field.data_type {
            return Err(corrupt(format!(
                "column {:?}: stored type {dt:?} != schema {:?}",
                field.name, field.data_type
            )));
        }
        let has_nulls = buf.get_u8() != 0;
        let null_words = if has_nulls {
            let n_words = rows.div_ceil(64);
            if n_words.checked_mul(8).is_none_or(|b| buf.remaining() < b) {
                return Err(corrupt("truncated null mask"));
            }
            let mut words = Vec::with_capacity(n_words);
            for _ in 0..n_words {
                words.push(buf.get_u64_le());
            }
            Some(words)
        } else {
            None
        };
        let is_null = |row: usize| -> bool {
            null_words
                .as_ref()
                .is_some_and(|w| (w[row / 64] >> (row % 64)) & 1 == 1)
        };

        let mut col = Column::new(dt);
        match dt {
            DataType::Int64 => {
                if rows.checked_mul(8).is_none_or(|b| buf.remaining() < b) {
                    return Err(corrupt("truncated int column"));
                }
                for row in 0..rows {
                    let v = buf.get_i64_le();
                    if is_null(row) {
                        col.push_null();
                    } else {
                        col.push(crate::value::ValueRef::Int64(v))?;
                    }
                }
            }
            DataType::Float64 => {
                if rows.checked_mul(8).is_none_or(|b| buf.remaining() < b) {
                    return Err(corrupt("truncated float column"));
                }
                for row in 0..rows {
                    let v = buf.get_f64_le();
                    if is_null(row) {
                        col.push_null();
                    } else {
                        col.push(crate::value::ValueRef::Float64(v))?;
                    }
                }
            }
            DataType::Utf8 => {
                if buf.remaining() < 4 {
                    return Err(corrupt("truncated dictionary"));
                }
                let dict_len = buf.get_u32_le() as usize;
                let mut dict_strings = Vec::with_capacity(dict_len.min(buf.remaining()));
                for _ in 0..dict_len {
                    dict_strings.push(get_str(&mut buf)?);
                }
                if rows.checked_mul(4).is_none_or(|b| buf.remaining() < b) {
                    return Err(corrupt("truncated codes"));
                }
                for row in 0..rows {
                    let code = buf.get_u32_le() as usize;
                    if is_null(row) {
                        col.push_null();
                    } else {
                        let s = dict_strings
                            .get(code)
                            .ok_or_else(|| corrupt(format!("dictionary code {code} out of range")))?;
                        col.push(crate::value::ValueRef::Utf8(s))?;
                    }
                }
            }
            DataType::Bool => {
                if buf.remaining() < rows {
                    return Err(corrupt("truncated bool column"));
                }
                for row in 0..rows {
                    let v = buf.get_u8() != 0;
                    if is_null(row) {
                        col.push_null();
                    } else {
                        col.push(crate::value::ValueRef::Bool(v))?;
                    }
                }
            }
        }
        columns.push(col);
    }

    let mut table = Table::from_columns(name, schema, columns)?;

    // Bitmask column.
    if buf.remaining() < 1 {
        return Err(corrupt("truncated bitmask flag"));
    }
    if buf.get_u8() != 0 {
        if buf.remaining() < 4 {
            return Err(corrupt("truncated bitmask width"));
        }
        let width = buf.get_u32_le() as usize;
        if rows
            .checked_mul(width)
            .and_then(|w| w.checked_mul(8))
            .is_none_or(|b| buf.remaining() < b)
        {
            return Err(corrupt("truncated bitmask words"));
        }
        let mut bm = BitmaskColumn::new(width * 64);
        for _ in 0..rows {
            let mut words = Vec::with_capacity(width);
            for _ in 0..width {
                words.push(buf.get_u64_le());
            }
            bm.push(&BitSet::from_raw_words(words));
        }
        table.attach_bitmask(bm)?;
    }

    if buf.has_remaining() {
        return Err(corrupt(format!("{} trailing bytes", buf.remaining())));
    }
    Ok(table)
}

/// Write a table to a file atomically (temp file + rename): a crash
/// mid-write leaves any previous version of the file intact.
pub fn write_table_file(table: &Table, path: impl AsRef<std::path::Path>) -> StorageResult<()> {
    let path = path.as_ref();
    let bytes = encode_table(table)?;
    fault::write_file_atomic(path, &bytes)
        .map_err(|e| StorageError::Io(format!("{}: {e}", path.display())))
}

/// Read a table from a file, verifying its checksum. Corrupt files are
/// quarantined (renamed to `<path>.corrupt`) so they are not retried;
/// version-mismatched files are rejected but left in place for migration.
pub fn read_table_file(path: impl AsRef<std::path::Path>) -> StorageResult<Table> {
    let path = path.as_ref();
    let bytes = fault::read_file(path)
        .map_err(|e| StorageError::Io(format!("{}: {e}", path.display())))?;
    match decode_table(&bytes) {
        Ok(table) => Ok(table),
        Err(e @ StorageError::Version { .. }) => Err(e),
        Err(e) => {
            let _ = fault::quarantine(path);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::Value;

    fn sample_table() -> Table {
        let schema = SchemaBuilder::new()
            .field("id", DataType::Int64)
            .field("price", DataType::Float64)
            .field("name", DataType::Utf8)
            .field("active", DataType::Bool)
            .build()
            .unwrap();
        let mut t = Table::empty("demo", schema);
        t.push_row(&[1i64.into(), 9.5f64.into(), "tv".into(), true.into()]).unwrap();
        t.push_row(&[2i64.into(), Value::Null, "stereo".into(), false.into()]).unwrap();
        t.push_row(&[Value::Null, 3.25f64.into(), Value::Null, Value::Null]).unwrap();
        t.push_row(&[4i64.into(), (-0.0f64).into(), "tv".into(), true.into()]).unwrap();
        t
    }

    fn assert_tables_equal(a: &Table, b: &Table) {
        assert_eq!(a.name(), b.name());
        assert_eq!(a.schema(), b.schema());
        assert_eq!(a.num_rows(), b.num_rows());
        for row in 0..a.num_rows() {
            for col in 0..a.schema().len() {
                assert_eq!(
                    a.value(row, col).to_owned(),
                    b.value(row, col).to_owned(),
                    "cell ({row}, {col})"
                );
            }
        }
        match (a.bitmask(), b.bitmask()) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert_eq!(x.len(), y.len());
                for row in 0..x.len() {
                    assert_eq!(x.row(row), y.row(row), "bitmask row {row}");
                }
            }
            _ => panic!("bitmask presence differs"),
        }
    }

    #[test]
    fn roundtrip_plain_table() {
        let t = sample_table();
        let bytes = encode_table(&t).unwrap();
        let back = decode_table(&bytes).unwrap();
        assert_tables_equal(&t, &back);
    }

    #[test]
    fn roundtrip_empty_table() {
        let schema = SchemaBuilder::new().field("x", DataType::Utf8).build().unwrap();
        let t = Table::empty("empty", schema);
        let back = decode_table(&encode_table(&t).unwrap()).unwrap();
        assert_eq!(back.num_rows(), 0);
        assert_eq!(back.name(), "empty");
    }

    #[test]
    fn roundtrip_with_bitmask() {
        let src = sample_table();
        let mut t = Table::empty("s", src.schema().clone());
        t.enable_bitmask(130); // 3 words per row
        t.push_row_from_with_mask(&src, 0, &BitSet::from_bits(130, [0, 129])).unwrap();
        t.push_row_from_with_mask(&src, 1, &BitSet::from_bits(130, [64])).unwrap();
        let back = decode_table(&encode_table(&t).unwrap()).unwrap();
        assert_tables_equal(&t, &back);
        assert!(back.bitmask().unwrap().row(0).contains(129));
    }

    #[test]
    fn roundtrip_long_table_null_mask() {
        // > 64 rows exercises multi-word null masks.
        let schema = SchemaBuilder::new().field("v", DataType::Int64).build().unwrap();
        let mut t = Table::empty("long", schema);
        for i in 0..200i64 {
            if i % 7 == 0 {
                t.push_row(&[Value::Null]).unwrap();
            } else {
                t.push_row(&[i.into()]).unwrap();
            }
        }
        let back = decode_table(&encode_table(&t).unwrap()).unwrap();
        assert_tables_equal(&t, &back);
    }

    /// End of the CRC-protected core region: header + core_len prefix +
    /// core payload. Bytes past this point belong to the zone section.
    fn core_end(bytes: &[u8]) -> usize {
        let core_len = u64::from_le_bytes(bytes[10..18].try_into().unwrap()) as usize;
        HEADER_LEN + 8 + core_len
    }

    #[test]
    fn corruption_detected() {
        let t = sample_table();
        let good = encode_table(&t).unwrap();
        let core_end = core_end(&good);
        assert!(core_end < good.len(), "v3 files carry a zone section");

        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(decode_table(&bad), Err(StorageError::Codec(_))));

        // Bad version: typed error naming found and supported versions.
        let mut bad = good.clone();
        bad[4] = 99;
        match decode_table(&bad) {
            Err(StorageError::Version { found, supported }) => {
                assert_eq!(found, 99);
                assert_eq!(supported, VERSION);
            }
            other => panic!("expected Version error, got {other:?}"),
        }

        // Truncation inside the protected core must error, never panic.
        for len in 0..core_end {
            assert!(decode_table(&good[..len]).is_err(), "prefix {len}");
        }
        // Truncation inside the zone section degrades: the table loads
        // (data is intact) with the summaries dropped.
        for len in core_end..good.len() {
            let back = decode_table(&good[..len]).unwrap();
            assert_tables_equal(&t, &back);
            assert!(back.zone_maps_if_present().is_none(), "prefix {len}");
        }

        // Trailing garbage invalidates the zone section only.
        let mut bad = good.clone();
        bad.push(0);
        let back = decode_table(&bad).unwrap();
        assert_tables_equal(&t, &back);
        assert!(back.zone_maps_if_present().is_none());

        // A core byte flip is caught by the checksum.
        let mut bad = good.clone();
        let mid = HEADER_LEN + 8 + (core_end - HEADER_LEN - 8) / 2;
        bad[mid] ^= 0x40;
        assert!(matches!(
            decode_table(&bad),
            Err(StorageError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn zone_maps_roundtrip_in_v3_files() {
        let t = sample_table();
        let computed = t.zone_maps().clone();
        let back = decode_table(&encode_table(&t).unwrap()).unwrap();
        let persisted = back
            .zone_maps_if_present()
            .expect("v3 decode attaches persisted maps without recompute");
        assert_eq!(**persisted, *computed);
    }

    #[test]
    fn v2_files_decode_and_recompute_zone_maps_lazily() {
        // Frame the shared core payload the way the v2 encoder did:
        // whole-payload checksum, no zone section.
        let t = sample_table();
        let core = encode_core(&t).unwrap();
        let mut v2 = Vec::with_capacity(HEADER_LEN + core.len());
        v2.put_slice(MAGIC);
        v2.put_u16_le(VERSION_V2);
        v2.put_u32_le(crc32c(&core));
        v2.extend_from_slice(&core);

        let back = decode_table(&v2).unwrap();
        assert_tables_equal(&t, &back);
        assert!(back.zone_maps_if_present().is_none(), "no maps persisted");
        // Lazy recompute yields exactly what a fresh build computes.
        assert_eq!(**back.zone_maps(), **t.zone_maps());

        // v2 corruption discipline is unchanged: any payload flip fails.
        let mut bad = v2.clone();
        bad[HEADER_LEN + 3] ^= 1;
        assert!(matches!(
            decode_table(&bad),
            Err(StorageError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn every_zone_section_flip_degrades_to_recompute() {
        // Flipping any byte at or past the zone section boundary must
        // never fail the load and never attach wrong maps: either the
        // maps survive bit-identical (impossible for CRC32C under a
        // single-bit error, but allowed) or they are dropped.
        let t = sample_table();
        let good = encode_table(&t).unwrap();
        let computed = t.zone_maps().clone();
        for pos in core_end(&good)..good.len() {
            let mut bad = good.clone();
            bad[pos] ^= 1;
            let back = decode_table(&bad)
                .unwrap_or_else(|e| panic!("zone flip at {pos} failed the load: {e}"));
            assert_tables_equal(&t, &back);
            if let Some(maps) = back.zone_maps_if_present() {
                assert_eq!(**maps, *computed, "flip at {pos} attached wrong maps");
            }
        }
    }

    #[test]
    fn file_roundtrip() {
        let t = sample_table();
        let dir = std::env::temp_dir().join(format!("aqp_io_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo.aqpt");
        write_table_file(&t, &path).unwrap();
        let back = read_table_file(&path).unwrap();
        assert_tables_equal(&t, &back);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_file_is_quarantined() {
        let t = sample_table();
        let dir = std::env::temp_dir().join(format!("aqp_io_quarantine_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo.aqpt");
        write_table_file(&t, &path).unwrap();

        // Corrupt the file on disk (inside the protected core region, not
        // the degradable zone section), then load: checksum + quarantine.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = HEADER_LEN + 8 + 4;
        bytes[mid] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_table_file(&path),
            Err(StorageError::ChecksumMismatch { .. })
        ));
        assert!(!path.exists(), "corrupt file moved aside");
        assert!(dir.join("demo.aqpt.corrupt").exists());

        // A missing file is an Io error naming the path.
        match read_table_file(&path) {
            Err(StorageError::Io(msg)) => assert!(msg.contains("demo.aqpt")),
            other => panic!("expected Io error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_faults_are_detected_and_atomicity_holds() {
        let t = sample_table();
        let dir = std::env::temp_dir().join(format!("aqp_io_fault_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inj.aqpt");
        write_table_file(&t, &path).unwrap();

        {
            let _g = fault::install(
                fault::FaultPlan::new(fault::Fault::BitFlip(40)).for_paths("inj.aqpt"),
            );
            assert!(
                matches!(read_table_file(&path), Err(StorageError::ChecksumMismatch { .. })),
                "read-side bit flip detected"
            );
        }
        // Read-side corruption quarantined the (actually intact) file;
        // restore it for the write test.
        std::fs::rename(dir.join("inj.aqpt.corrupt"), &path).unwrap();

        {
            let _g = fault::install(
                fault::FaultPlan::new(fault::Fault::WriteErr { nth: 0 }).for_paths("inj.aqpt"),
            );
            let schema =
                SchemaBuilder::new().field("z", DataType::Int64).build().unwrap();
            let other = Table::empty("other", schema);
            assert!(matches!(
                write_table_file(&other, &path),
                Err(StorageError::Io(_))
            ));
        }
        // Torn write never reached the destination: old table still loads.
        let back = read_table_file(&path).unwrap();
        assert_tables_equal(&t, &back);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn value_codec_roundtrip() {
        let values = [
            Value::Null,
            Value::Int64(-42),
            Value::Float64(2.5),
            Value::Float64(f64::NAN),
            Value::Utf8("héllo".into()),
            Value::Bool(true),
        ];
        let mut buf = BytesMut::new();
        for v in &values {
            put_value(&mut buf, v).unwrap();
        }
        let bytes = buf.to_vec();
        let mut slice = bytes.as_slice();
        for v in &values {
            let back = get_value(&mut slice).unwrap();
            assert_eq!(&back, v);
        }
        assert!(!slice.has_remaining());
        // Truncations error.
        for len in 0..bytes.len() {
            let mut s = &bytes[..len];
            let mut ok = true;
            for _ in 0..values.len() {
                if get_value(&mut s).is_err() {
                    ok = false;
                    break;
                }
            }
            assert!(!ok, "prefix {len} decoded fully");
        }
    }

    #[test]
    fn negative_zero_preserved() {
        // -0.0 and 0.0 differ bitwise and must survive the roundtrip
        // (group keys distinguish them).
        let t = sample_table();
        let back = decode_table(&encode_table(&t).unwrap()).unwrap();
        let col = back.column_by_name("price").unwrap();
        let v = col.as_float64().unwrap()[3];
        assert!(v == 0.0 && v.is_sign_negative());
    }
}
