//! Deterministic fault injection for storage IO.
//!
//! Corruption, torn writes, and flaky disks are hard to reproduce with
//! hand-crafted byte surgery. This failpoint-style layer lets tests (and CI
//! fault-matrix jobs) inject storage faults deterministically: every file
//! read and write performed by the persistence codecs goes through
//! [`read_file`] / [`write_file_atomic`], which consult the currently
//! installed [`FaultPlan`].
//!
//! Faults are installed two ways:
//!
//! * **Programmatically** — [`install`] returns a [`FaultGuard`]; the plan
//!   is active until the guard drops. Installation also serializes tests
//!   through a global lock so concurrent tests cannot see each other's
//!   faults.
//! * **Environment-driven** — the `AQP_FAULTS` variable is parsed once per
//!   process, e.g. `AQP_FAULTS=bitflip@700:envfault`. This is how the CI
//!   fault matrix runs the integration suite once per fault class without
//!   code changes.
//!
//! The spec grammar is `kind[@arg][:path-substring]`:
//!
//! | spec | effect |
//! |---|---|
//! | `missing` | reads fail with `NotFound` |
//! | `read-err@N` | the (N+1)-th matching read fails with an IO error |
//! | `write-err@N` | the (N+1)-th matching write fails mid-write (torn temp file, destination untouched) |
//! | `truncate@N` | reads observe only the first N bytes of the file |
//! | `bitflip@N` | reads observe bit 0 of byte N (mod file length) flipped |
//!
//! The optional `:path-substring` scopes the fault to paths containing the
//! substring, so a fault aimed at one file cannot perturb unrelated IO.
//! Read-side corruption (`truncate`, `bitflip`) never modifies the on-disk
//! file — it simulates media corruption while keeping the original bytes
//! available for post-mortem.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// One class of injected storage fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Reads observe only the first N bytes.
    TruncateAt(usize),
    /// Reads observe bit 0 of byte N (mod file length) flipped.
    BitFlip(usize),
    /// The (nth+1)-th matching read fails with an IO error.
    ReadErr {
        /// 0-based index of the failing read.
        nth: usize,
    },
    /// The (nth+1)-th matching write fails after writing half the temp
    /// file, simulating a crash mid-write. The destination is untouched.
    WriteErr {
        /// 0-based index of the failing write.
        nth: usize,
    },
    /// Reads fail with `NotFound`, as if the file were deleted.
    Missing,
}

/// A fault plus the paths it applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// What goes wrong.
    pub fault: Fault,
    /// Only paths containing this substring are affected (`None` = all).
    pub path_substr: Option<String>,
}

impl FaultPlan {
    /// A plan affecting every path.
    pub fn new(fault: Fault) -> Self {
        FaultPlan {
            fault,
            path_substr: None,
        }
    }

    /// Restrict the plan to paths containing `substr`.
    pub fn for_paths(mut self, substr: impl Into<String>) -> Self {
        self.path_substr = Some(substr.into());
        self
    }

    fn matches(&self, path: &Path) -> bool {
        match &self.path_substr {
            None => true,
            Some(s) => path.to_string_lossy().contains(s.as_str()),
        }
    }
}

struct State {
    plan: Option<FaultPlan>,
    reads: usize,
    writes: usize,
}

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| {
        Mutex::new(State {
            plan: env_plan(),
            reads: 0,
            writes: 0,
        })
    })
}

fn serial_lock() -> &'static Mutex<()> {
    static SERIAL: Mutex<()> = Mutex::new(());
    &SERIAL
}

/// Parse a `kind[@arg][:substr]` spec. Returns `None` for malformed specs.
pub fn parse_spec(spec: &str) -> Option<FaultPlan> {
    let (body, substr) = match spec.split_once(':') {
        Some((b, s)) => (b, Some(s.to_owned())),
        None => (spec, None),
    };
    let (kind, arg) = match body.split_once('@') {
        Some((k, a)) => (k, Some(a)),
        None => (body, None),
    };
    let num = |a: Option<&str>| a.and_then(|s| s.parse::<usize>().ok());
    let fault = match kind {
        "missing" => Fault::Missing,
        "truncate" => Fault::TruncateAt(num(arg)?),
        "bitflip" => Fault::BitFlip(num(arg)?),
        "read-err" => Fault::ReadErr { nth: num(arg)? },
        "write-err" => Fault::WriteErr { nth: num(arg)? },
        _ => return None,
    };
    Some(FaultPlan {
        fault,
        path_substr: substr,
    })
}

/// The plan requested via `AQP_FAULTS`, if any (parsed once per process).
pub fn env_plan() -> Option<FaultPlan> {
    static ENV: OnceLock<Option<FaultPlan>> = OnceLock::new();
    ENV.get_or_init(|| std::env::var("AQP_FAULTS").ok().and_then(|s| parse_spec(&s)))
        .clone()
}

/// Keeps an installed plan active; dropping it restores the env-driven
/// plan (or no plan) and releases the cross-test serialization lock.
pub struct FaultGuard {
    _serial: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        let mut st = state().lock().expect("fault state poisoned");
        st.plan = env_plan();
        st.reads = 0;
        st.writes = 0;
    }
}

/// Install `plan` until the returned guard drops. Serializes callers: a
/// second `install` blocks until the first guard is dropped, so parallel
/// tests never observe each other's faults.
pub fn install(plan: FaultPlan) -> FaultGuard {
    let serial = match serial_lock().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    let mut st = state().lock().expect("fault state poisoned");
    st.plan = Some(plan);
    st.reads = 0;
    st.writes = 0;
    drop(st);
    FaultGuard { _serial: serial }
}

fn injected(msg: &str) -> io::Error {
    io::Error::other(format!("injected fault: {msg}"))
}

/// Tally an injected fault that actually fired (not merely installed) so
/// the resilience ladder's behaviour can be correlated with its cause:
/// `aqp_fault_injected_total{kind=...}` plus a structured warn event.
fn fault_hit(kind: &'static str, path: &Path) {
    aqp_obs::counter("aqp_fault_injected_total", &[("kind", kind)]).inc();
    aqp_obs::event::warn(
        "storage::fault",
        "injected storage fault fired",
        &[("kind", kind), ("path", &path.to_string_lossy())],
    );
}

/// Read a whole file, applying any installed read-side fault.
pub fn read_file(path: &Path) -> io::Result<Vec<u8>> {
    let fault = {
        let mut st = state().lock().expect("fault state poisoned");
        match &st.plan {
            Some(p) if p.matches(path) => match p.fault {
                Fault::ReadErr { nth } => {
                    let hit = st.reads == nth;
                    st.reads += 1;
                    if hit {
                        drop(st);
                        fault_hit("read-err", path);
                        return Err(injected("read error"));
                    }
                    None
                }
                Fault::Missing => {
                    drop(st);
                    fault_hit("missing", path);
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("injected fault: {} missing", path.display()),
                    ));
                }
                ref f => Some(f.clone()),
            },
            _ => None,
        }
    };
    let mut bytes = std::fs::read(path)?;
    match fault {
        Some(Fault::TruncateAt(n)) => {
            bytes.truncate(n);
            fault_hit("truncate", path);
        }
        Some(Fault::BitFlip(n)) if !bytes.is_empty() => {
            let i = n % bytes.len();
            bytes[i] ^= 1;
            fault_hit("bitflip", path);
        }
        _ => {}
    }
    Ok(bytes)
}

/// Write a whole file atomically: write to a sibling temp file, then
/// rename over the destination. A crash (or injected `WriteErr`) mid-write
/// leaves the destination untouched — readers see either the old bytes or
/// the new bytes, never a torn mix.
pub fn write_file_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let write_fails = {
        let mut st = state().lock().expect("fault state poisoned");
        match &st.plan {
            Some(p) if p.matches(path) => match p.fault {
                Fault::WriteErr { nth } => {
                    let hit = st.writes == nth;
                    st.writes += 1;
                    hit
                }
                _ => false,
            },
            _ => false,
        }
    };
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    if write_fails {
        // Simulate a crash mid-write: half the payload reaches the temp
        // file, the destination is never touched.
        fault_hit("write-err", path);
        let _ = std::fs::write(&tmp, &bytes[..bytes.len() / 2]);
        return Err(injected("write error"));
    }
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// Move a corrupt file aside to `<path>.corrupt` so subsequent loads do
/// not retry it. Best-effort: returns the quarantine path on success.
pub fn quarantine(path: &Path) -> Option<PathBuf> {
    let mut q = path.as_os_str().to_owned();
    q.push(".corrupt");
    let q = PathBuf::from(q);
    let moved = std::fs::rename(path, &q).ok().map(|_| q);
    if let Some(q) = &moved {
        aqp_obs::counter("aqp_quarantine_total", &[]).inc();
        aqp_obs::event::warn(
            "storage::fault",
            "quarantined corrupt file",
            &[
                ("path", &path.to_string_lossy()),
                ("quarantine", &q.to_string_lossy()),
            ],
        );
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aqp_fault_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn spec_parsing() {
        assert_eq!(
            parse_spec("missing"),
            Some(FaultPlan::new(Fault::Missing))
        );
        assert_eq!(
            parse_spec("truncate@64:family"),
            Some(FaultPlan::new(Fault::TruncateAt(64)).for_paths("family"))
        );
        assert_eq!(
            parse_spec("bitflip@7"),
            Some(FaultPlan::new(Fault::BitFlip(7)))
        );
        assert_eq!(
            parse_spec("read-err@0"),
            Some(FaultPlan::new(Fault::ReadErr { nth: 0 }))
        );
        assert_eq!(
            parse_spec("write-err@2:x"),
            Some(FaultPlan::new(Fault::WriteErr { nth: 2 }).for_paths("x"))
        );
        assert_eq!(parse_spec("truncate"), None, "missing arg");
        assert_eq!(parse_spec("gremlins@9"), None, "unknown kind");
    }

    #[test]
    fn read_faults_apply_and_clear() {
        let path = temp_path("read_faults.bin");
        write_file_atomic(&path, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();

        {
            let _g = install(FaultPlan::new(Fault::TruncateAt(3)).for_paths("read_faults"));
            assert_eq!(read_file(&path).unwrap(), vec![1, 2, 3]);
        }
        {
            let _g = install(FaultPlan::new(Fault::BitFlip(1)).for_paths("read_faults"));
            assert_eq!(read_file(&path).unwrap()[1], 3);
        }
        {
            let _g = install(FaultPlan::new(Fault::Missing).for_paths("read_faults"));
            assert_eq!(
                read_file(&path).unwrap_err().kind(),
                std::io::ErrorKind::NotFound
            );
        }
        {
            let _g = install(FaultPlan::new(Fault::ReadErr { nth: 1 }).for_paths("read_faults"));
            assert!(read_file(&path).is_ok(), "read 0 succeeds");
            assert!(read_file(&path).is_err(), "read 1 fails");
            assert!(read_file(&path).is_ok(), "read 2 succeeds");
        }
        // Guard dropped: no faults remain.
        assert_eq!(read_file(&path).unwrap().len(), 8);
    }

    #[test]
    fn scoped_fault_ignores_other_paths() {
        let path = temp_path("unrelated.bin");
        write_file_atomic(&path, b"hello").unwrap();
        let _g = install(FaultPlan::new(Fault::Missing).for_paths("some-other-file"));
        assert_eq!(read_file(&path).unwrap(), b"hello");
    }

    #[test]
    fn atomic_write_survives_injected_crash() {
        let path = temp_path("atomic.bin");
        write_file_atomic(&path, b"generation-1").unwrap();
        {
            let _g = install(FaultPlan::new(Fault::WriteErr { nth: 0 }).for_paths("atomic"));
            assert!(write_file_atomic(&path, b"generation-2").is_err());
        }
        // The old bytes survive the torn write.
        assert_eq!(read_file(&path).unwrap(), b"generation-1");
        write_file_atomic(&path, b"generation-2").unwrap();
        assert_eq!(read_file(&path).unwrap(), b"generation-2");
    }

    #[test]
    fn quarantine_moves_file_aside() {
        let path = temp_path("bad.bin");
        write_file_atomic(&path, b"junk").unwrap();
        let q = quarantine(&path).expect("quarantine succeeds");
        assert!(!path.exists());
        assert!(q.exists());
        assert!(q.to_string_lossy().ends_with(".corrupt"));
        assert_eq!(quarantine(&path), None, "already moved");
    }
}
