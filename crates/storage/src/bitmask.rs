//! Variable-width bitmasks for sample-table membership tagging.
//!
//! Small group sampling tags every sampled row with the set of small group
//! tables that contain it (Section 4.2.1 of the paper: "Each row ... is
//! tagged with an extra bitmask field (of length |S|)"). The paper's SQL
//! formulation uses an integer column and `bitmask & M = 0` filters; since
//! |S| can exceed 64 on wide schemas (the SALES database has 245 columns),
//! this module provides an arbitrary-width [`BitSet`] plus a packed columnar
//! representation, [`BitmaskColumn`], storing one bitmask per row.

/// An arbitrary-width set of bit positions.
///
/// Semantically identical to the paper's integer bitmask, generalised past
/// 64 bits. All bitmasks attached to one sample family share a fixed width.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty bitset able to hold bits `0..num_bits`.
    pub fn with_capacity(num_bits: usize) -> Self {
        BitSet {
            words: vec![0; num_bits.div_ceil(64).max(1)],
        }
    }

    /// Build a bitset directly from backing words (low bit of word 0 is
    /// bit 0). Used by the binary table codec.
    pub fn from_raw_words(words: Vec<u64>) -> Self {
        BitSet { words }
    }

    /// Build a bitset from an iterator of bit positions.
    pub fn from_bits<I: IntoIterator<Item = usize>>(num_bits: usize, bits: I) -> Self {
        let mut s = Self::with_capacity(num_bits);
        for b in bits {
            s.set(b);
        }
        s
    }

    /// Number of 64-bit words backing the set.
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Set bit `bit`, growing the word vector if needed.
    pub fn set(&mut self, bit: usize) {
        let word = bit / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1u64 << (bit % 64);
    }

    /// Whether bit `bit` is set.
    pub fn contains(&self, bit: usize) -> bool {
        let word = bit / 64;
        word < self.words.len() && (self.words[word] >> (bit % 64)) & 1 == 1
    }

    /// Whether any bit is set in both `self` and `other`.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Whether no bits are set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate over the positions of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }

    /// Raw backing words (low bit of word 0 is bit 0).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// A packed column of fixed-width bitmasks, one per row.
///
/// This is the storage-side representation of the paper's `bitmask` column
/// on sample tables. Filtering "rows whose bitmask intersects mask M" is a
/// tight loop over `width` words per row.
#[derive(Debug, Clone, Default)]
pub struct BitmaskColumn {
    /// Words per row. Fixed for the lifetime of the column.
    width: usize,
    /// Row-major packed words; `len = width * num_rows`.
    words: Vec<u64>,
}

impl BitmaskColumn {
    /// Create an empty column whose rows can hold bits `0..num_bits`.
    pub fn new(num_bits: usize) -> Self {
        BitmaskColumn {
            width: num_bits.div_ceil(64).max(1),
            words: Vec::new(),
        }
    }

    /// Words allocated per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.words.len().checked_div(self.width).unwrap_or(0)
    }

    /// Whether the column has zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a row's bitmask. The bitset must not have bits beyond the
    /// column width; narrower bitsets are zero-extended.
    pub fn push(&mut self, mask: &BitSet) {
        let mw = mask.words();
        assert!(
            mw.len() <= self.width || mw[self.width..].iter().all(|w| *w == 0),
            "bitmask wider than column"
        );
        for i in 0..self.width {
            self.words.push(mw.get(i).copied().unwrap_or(0));
        }
    }

    /// Append an all-zero bitmask row.
    pub fn push_empty(&mut self) {
        self.words.resize(self.words.len() + self.width, 0);
    }

    /// Whether the bitmask of `row` intersects `mask`.
    pub fn row_intersects(&self, row: usize, mask: &BitSet) -> bool {
        let start = row * self.width;
        let row_words = &self.words[start..start + self.width];
        row_words
            .iter()
            .zip(mask.words().iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Whether **any** row in `start..end` has a bitmask intersecting
    /// `mask`.
    ///
    /// This is the word-level fast-skip behind the vectorised
    /// `bitmask & M = 0` exclusion filter: a scan kernel tests a whole
    /// 64-row block with one call and only falls back to per-row
    /// [`Self::row_intersects`] probes when the block-wide OR of the
    /// stored masks actually touches `mask`. Word positions where `mask`
    /// has no bits set are skipped outright, so sparse masks over wide
    /// bitmask columns cost one branch per word, not one scan per word.
    pub fn range_intersects(&self, start: usize, end: usize, mask: &BitSet) -> bool {
        debug_assert!(start <= end && end * self.width <= self.words.len());
        for (i, &m) in mask.words().iter().take(self.width).enumerate() {
            if m == 0 {
                continue;
            }
            let mut acc = 0u64;
            for row in start..end {
                acc |= self.words[row * self.width + i];
            }
            if acc & m != 0 {
                return true;
            }
        }
        false
    }

    /// The bitmask of `row` as an owned [`BitSet`].
    pub fn row(&self, row: usize) -> BitSet {
        let start = row * self.width;
        BitSet {
            words: self.words[start..start + self.width].to_vec(),
        }
    }

    /// Overwrite the bitmask stored for `row`. Narrower bitsets are
    /// zero-extended; bits beyond the column width must be clear.
    pub fn overwrite_row(&mut self, row: usize, mask: &BitSet) {
        let mw = mask.words();
        assert!(
            mw.len() <= self.width || mw[self.width..].iter().all(|w| *w == 0),
            "bitmask wider than column"
        );
        let start = row * self.width;
        for i in 0..self.width {
            self.words[start + i] = mw.get(i).copied().unwrap_or(0);
        }
    }

    /// Select the subset of rows whose bitmask does **not** intersect
    /// `mask` — the paper's `WHERE bitmask & M = 0` filter.
    pub fn rows_disjoint_from(&self, mask: &BitSet) -> Vec<usize> {
        (0..self.len())
            .filter(|&r| !self.row_intersects(r, mask))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_contains() {
        let mut s = BitSet::with_capacity(10);
        s.set(0);
        s.set(9);
        s.set(70); // grows
        assert!(s.contains(0) && s.contains(9) && s.contains(70));
        assert!(!s.contains(1) && !s.contains(64));
        assert_eq!(s.count_ones(), 3);
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![0, 9, 70]);
    }

    #[test]
    fn intersects() {
        let a = BitSet::from_bits(128, [3, 100]);
        let b = BitSet::from_bits(128, [100]);
        let c = BitSet::from_bits(128, [4, 99]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(!BitSet::with_capacity(128).intersects(&a));
        assert!(BitSet::with_capacity(4).is_empty());
        assert!(!a.is_empty());
    }

    #[test]
    fn different_width_intersects() {
        let narrow = BitSet::from_bits(4, [2]);
        let wide = BitSet::from_bits(200, [2, 150]);
        assert!(narrow.intersects(&wide));
        assert!(wide.intersects(&narrow));
        let wide_only = BitSet::from_bits(200, [150]);
        assert!(!narrow.intersects(&wide_only));
    }

    #[test]
    fn column_push_and_filter() {
        let mut col = BitmaskColumn::new(3);
        assert_eq!(col.width(), 1);
        col.push(&BitSet::from_bits(3, [0]));
        col.push(&BitSet::from_bits(3, [1]));
        col.push(&BitSet::from_bits(3, [0, 2]));
        col.push_empty();
        assert_eq!(col.len(), 4);

        let m0 = BitSet::from_bits(3, [0]);
        assert!(col.row_intersects(0, &m0));
        assert!(!col.row_intersects(1, &m0));
        assert!(col.row_intersects(2, &m0));
        assert!(!col.row_intersects(3, &m0));
        assert_eq!(col.rows_disjoint_from(&m0), vec![1, 3]);
        assert_eq!(col.row(2).iter_ones().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn wide_column() {
        // 130 bits => 3 words per row.
        let mut col = BitmaskColumn::new(130);
        assert_eq!(col.width(), 3);
        col.push(&BitSet::from_bits(130, [129]));
        col.push(&BitSet::from_bits(130, [64]));
        let m = BitSet::from_bits(130, [129]);
        assert_eq!(col.rows_disjoint_from(&m), vec![1]);
    }

    #[test]
    fn range_intersects_agrees_with_per_row_probes() {
        // 130 bits => 3 words per row; rows tagged in varying words.
        let mut col = BitmaskColumn::new(130);
        for r in 0..200usize {
            match r % 5 {
                0 => col.push(&BitSet::from_bits(130, [r % 64])),
                1 => col.push(&BitSet::from_bits(130, [64 + r % 64])),
                2 => col.push(&BitSet::from_bits(130, [128 + r % 2])),
                _ => col.push_empty(),
            }
        }
        for mask in [
            BitSet::from_bits(130, [3]),
            BitSet::from_bits(130, [70]),
            BitSet::from_bits(130, [128, 129]),
            BitSet::with_capacity(130),
        ] {
            for start in [0, 1, 63, 64, 130] {
                for end in [start, start + 1, start + 64, 200] {
                    let end = end.min(200);
                    if end < start {
                        continue;
                    }
                    let expect = (start..end).any(|r| col.row_intersects(r, &mask));
                    assert_eq!(
                        col.range_intersects(start, end, &mask),
                        expect,
                        "range {start}..{end}"
                    );
                }
            }
        }
    }

    #[test]
    fn range_intersects_narrow_and_wide_masks() {
        let mut col = BitmaskColumn::new(8);
        col.push(&BitSet::from_bits(8, [2]));
        col.push_empty();
        // A mask wider than the column only consults the column's words.
        let wide = BitSet::from_bits(200, [2, 150]);
        assert!(col.range_intersects(0, 2, &wide));
        let wide_only = BitSet::from_bits(200, [150]);
        assert!(!col.range_intersects(0, 2, &wide_only));
        // Empty ranges never intersect.
        assert!(!col.range_intersects(1, 1, &wide));
    }

    #[test]
    fn empty_mask_matches_nothing() {
        let mut col = BitmaskColumn::new(8);
        col.push(&BitSet::from_bits(8, [1, 2]));
        let empty = BitSet::with_capacity(8);
        assert_eq!(col.rows_disjoint_from(&empty), vec![0]);
    }
}
