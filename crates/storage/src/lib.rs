//! # aqp-storage
//!
//! In-memory columnar storage engine used as the substrate for the
//! dynamic-sample-selection approximate query processing (AQP) system.
//!
//! The engine provides:
//!
//! * typed columns ([`Column`]) over 64-bit integers, 64-bit floats, booleans
//!   and dictionary-encoded UTF-8 strings, each with an optional null mask;
//! * [`Schema`]s and [`Table`]s with both row-at-a-time and columnar bulk
//!   construction;
//! * a variable-width per-row [`BitSet`] column ([`BitmaskColumn`]) used by
//!   small group sampling to tag each sample row with the set of sample
//!   tables that contain it (Section 4.2.1 of the paper), generalised beyond
//!   64 columns;
//! * lightweight per-column statistics ([`stats::ColumnStats`]).
//!
//! Everything is deliberately self-contained: no external storage formats,
//! no I/O. Tables live in memory, which is what the paper's middleware
//! architecture assumes of the sample tables it touches at runtime.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bitmask;
pub mod column;
pub mod crc;
pub mod csv;
pub mod dictionary;
pub mod error;
pub mod fault;
pub mod io;
pub mod morsel;
pub mod nulls;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;
pub mod zonemap;

pub use bitmask::{BitSet, BitmaskColumn};
pub use column::{Column, ColumnBuilder};
pub use crc::crc32c;
pub use csv::{read_csv_file, table_from_csv, table_to_csv, write_csv_file};
pub use dictionary::Dictionary;
pub use error::{StorageError, StorageResult};
pub use fault::{Fault, FaultGuard, FaultPlan};
pub use io::{decode_table, encode_table, read_table_file, write_table_file};
pub use morsel::{morsels, Morsel, MorselIter, DEFAULT_MORSEL_ROWS};
pub use nulls::NullMask;
pub use schema::{Field, Schema, SchemaBuilder};
pub use stats::ColumnStats;
pub use table::{Table, TableBuilder};
pub use value::{DataType, Value, ValueRef};
pub use zonemap::{BlockBounds, BlockSummary, ColumnZoneMap, ZoneMaps, ZONE_BLOCK_ROWS};
