//! Null masks: compact per-row validity tracking.

/// A bit-packed validity mask for a column.
///
/// Bit `i` set means row `i` is **null**. Most columns in the AQP workloads
/// are fully valid, so columns store `Option<NullMask>` and skip the mask
/// entirely in the common case.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NullMask {
    words: Vec<u64>,
    len: usize,
    null_count: usize,
}

impl NullMask {
    /// Create an empty mask.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a mask of `len` rows, all valid (non-null).
    pub fn all_valid(len: usize) -> Self {
        NullMask {
            words: vec![0; len.div_ceil(64)],
            len,
            null_count: 0,
        }
    }

    /// Number of rows covered by this mask.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mask covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of null rows.
    pub fn null_count(&self) -> usize {
        self.null_count
    }

    /// Append one row with the given nullness.
    pub fn push(&mut self, is_null: bool) {
        let word = self.len / 64;
        if word >= self.words.len() {
            self.words.push(0);
        }
        if is_null {
            self.words[word] |= 1u64 << (self.len % 64);
            self.null_count += 1;
        }
        self.len += 1;
    }

    /// Whether row `row` is null. Panics if out of bounds.
    pub fn is_null(&self, row: usize) -> bool {
        assert!(row < self.len, "row {row} out of bounds (len {})", self.len);
        (self.words[row / 64] >> (row % 64)) & 1 == 1
    }

    /// Mark row `row` as null.
    pub fn set_null(&mut self, row: usize) {
        assert!(row < self.len, "row {row} out of bounds (len {})", self.len);
        let w = &mut self.words[row / 64];
        let bit = 1u64 << (row % 64);
        if *w & bit == 0 {
            *w |= bit;
            self.null_count += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut m = NullMask::new();
        for i in 0..200 {
            m.push(i % 3 == 0);
        }
        assert_eq!(m.len(), 200);
        for i in 0..200 {
            assert_eq!(m.is_null(i), i % 3 == 0, "row {i}");
        }
        assert_eq!(m.null_count(), (0..200).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn all_valid_then_set() {
        let mut m = NullMask::all_valid(100);
        assert_eq!(m.null_count(), 0);
        m.set_null(63);
        m.set_null(64);
        m.set_null(64); // idempotent
        assert_eq!(m.null_count(), 2);
        assert!(m.is_null(63));
        assert!(m.is_null(64));
        assert!(!m.is_null(65));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let m = NullMask::all_valid(10);
        let _ = m.is_null(10);
    }
}
