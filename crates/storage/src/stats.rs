//! Lightweight per-column statistics.
//!
//! These mirror the "histograms built for the query optimizer" the paper
//! mentions as an alternative source of value-frequency information for the
//! first preprocessing pass (Section 4.2.1).

use crate::column::Column;
use crate::value::Value;
use std::collections::HashMap;

/// Summary statistics for one column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Number of rows examined.
    pub row_count: usize,
    /// Number of null rows.
    pub null_count: usize,
    /// Exact distinct-value count, or `None` if it exceeded the cap while
    /// scanning (mirrors the paper's τ distinct-value cut-off).
    pub distinct_count: Option<usize>,
    /// Minimum non-null value, if any row was non-null.
    pub min: Option<Value>,
    /// Maximum non-null value, if any row was non-null.
    pub max: Option<Value>,
    /// Value frequencies (present only when `distinct_count` is `Some`).
    pub frequencies: Option<HashMap<Value, usize>>,
}

impl ColumnStats {
    /// Compute statistics for `column`, abandoning frequency tracking once
    /// more than `distinct_cap` distinct values are seen.
    pub fn compute(column: &Column, distinct_cap: usize) -> Self {
        let mut freq: Option<HashMap<Value, usize>> = Some(HashMap::new());
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        let mut null_count = 0usize;

        for row in 0..column.len() {
            let v = column.value(row);
            if v.is_null() {
                null_count += 1;
                continue;
            }
            // Compare borrowed: an owned clone (a string allocation for
            // dict columns) is only made on a new extremum or a live
            // frequency-map insertion, not once per row.
            if min.as_ref().is_none_or(|m| v < m.as_ref()) {
                min = Some(v.to_owned());
            }
            if max.as_ref().is_none_or(|m| v > m.as_ref()) {
                max = Some(v.to_owned());
            }
            if let Some(map) = freq.as_mut() {
                *map.entry(v.to_owned()).or_insert(0) += 1;
                if map.len() > distinct_cap {
                    freq = None;
                }
            }
        }

        ColumnStats {
            row_count: column.len(),
            null_count,
            distinct_count: freq.as_ref().map(HashMap::len),
            min,
            max,
            frequencies: freq,
        }
    }

    /// Distinct values sorted by descending frequency (ties broken by value
    /// for determinism). Empty when frequency tracking was abandoned.
    pub fn values_by_frequency(&self) -> Vec<(Value, usize)> {
        let Some(freq) = &self.frequencies else {
            return Vec::new();
        };
        let mut pairs: Vec<(Value, usize)> =
            freq.iter().map(|(v, c)| (v.clone(), *c)).collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{DataType, ValueRef};

    fn int_column(vals: &[Option<i64>]) -> Column {
        let mut c = Column::new(DataType::Int64);
        for v in vals {
            match v {
                Some(x) => c.push(ValueRef::Int64(*x)).unwrap(),
                None => c.push_null(),
            }
        }
        c
    }

    #[test]
    fn basic_stats() {
        let c = int_column(&[Some(3), Some(1), None, Some(3), Some(2)]);
        let s = ColumnStats::compute(&c, 100);
        assert_eq!(s.row_count, 5);
        assert_eq!(s.null_count, 1);
        assert_eq!(s.distinct_count, Some(3));
        assert_eq!(s.min, Some(Value::Int64(1)));
        assert_eq!(s.max, Some(Value::Int64(3)));
        let by_freq = s.values_by_frequency();
        assert_eq!(by_freq[0], (Value::Int64(3), 2));
    }

    #[test]
    fn distinct_cap_abandons_tracking() {
        let vals: Vec<Option<i64>> = (0..50).map(Some).collect();
        let c = int_column(&vals);
        let s = ColumnStats::compute(&c, 10);
        assert_eq!(s.distinct_count, None);
        assert!(s.frequencies.is_none());
        assert!(s.values_by_frequency().is_empty());
        // min/max still tracked.
        assert_eq!(s.min, Some(Value::Int64(0)));
        assert_eq!(s.max, Some(Value::Int64(49)));
    }

    #[test]
    fn all_null_column() {
        let c = int_column(&[None, None]);
        let s = ColumnStats::compute(&c, 10);
        assert_eq!(s.null_count, 2);
        assert_eq!(s.min, None);
        assert_eq!(s.max, None);
        assert_eq!(s.distinct_count, Some(0));
    }

    #[test]
    fn frequency_ordering_is_deterministic() {
        let c = int_column(&[Some(5), Some(7), Some(5), Some(7), Some(1)]);
        let s = ColumnStats::compute(&c, 100);
        let pairs = s.values_by_frequency();
        // 5 and 7 tie at 2; tie broken by value order.
        assert_eq!(pairs[0].0, Value::Int64(5));
        assert_eq!(pairs[1].0, Value::Int64(7));
        assert_eq!(pairs[2].0, Value::Int64(1));
    }
}
