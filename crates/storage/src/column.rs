//! Typed columns and column builders.

use crate::dictionary::Dictionary;
use crate::error::{StorageError, StorageResult};
use crate::nulls::NullMask;
use crate::value::{DataType, Value, ValueRef};

/// A single typed column of data.
///
/// String columns are dictionary-encoded: the column stores one `u32` code
/// per row and a per-column [`Dictionary`]. Null rows carry an arbitrary
/// placeholder in the data vector and are marked in the null mask.
#[derive(Debug, Clone)]
pub enum Column {
    /// 64-bit integers.
    Int64 {
        /// Row values (placeholder 0 for nulls).
        data: Vec<i64>,
        /// Optional null mask; `None` means fully valid.
        nulls: Option<NullMask>,
    },
    /// 64-bit floats.
    Float64 {
        /// Row values (placeholder 0.0 for nulls).
        data: Vec<f64>,
        /// Optional null mask; `None` means fully valid.
        nulls: Option<NullMask>,
    },
    /// Dictionary-encoded UTF-8 strings.
    Utf8 {
        /// Per-row dictionary codes (placeholder 0 for nulls).
        codes: Vec<u32>,
        /// The shared dictionary for this column.
        dict: Dictionary,
        /// Optional null mask; `None` means fully valid.
        nulls: Option<NullMask>,
    },
    /// Booleans.
    Bool {
        /// Row values (placeholder `false` for nulls).
        data: Vec<bool>,
        /// Optional null mask; `None` means fully valid.
        nulls: Option<NullMask>,
    },
}

impl Column {
    /// Create an empty column of the given type.
    pub fn new(data_type: DataType) -> Self {
        match data_type {
            DataType::Int64 => Column::Int64 { data: Vec::new(), nulls: None },
            DataType::Float64 => Column::Float64 { data: Vec::new(), nulls: None },
            DataType::Utf8 => Column::Utf8 {
                codes: Vec::new(),
                dict: Dictionary::new(),
                nulls: None,
            },
            DataType::Bool => Column::Bool { data: Vec::new(), nulls: None },
        }
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int64 { .. } => DataType::Int64,
            Column::Float64 { .. } => DataType::Float64,
            Column::Utf8 { .. } => DataType::Utf8,
            Column::Bool { .. } => DataType::Bool,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int64 { data, .. } => data.len(),
            Column::Float64 { data, .. } => data.len(),
            Column::Utf8 { codes, .. } => codes.len(),
            Column::Bool { data, .. } => data.len(),
        }
    }

    /// Whether the column has zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether row `row` is null.
    pub fn is_null(&self, row: usize) -> bool {
        let nulls = match self {
            Column::Int64 { nulls, .. }
            | Column::Float64 { nulls, .. }
            | Column::Utf8 { nulls, .. }
            | Column::Bool { nulls, .. } => nulls,
        };
        nulls.as_ref().is_some_and(|m| m.is_null(row))
    }

    /// Number of null rows.
    pub fn null_count(&self) -> usize {
        match self {
            Column::Int64 { nulls, .. }
            | Column::Float64 { nulls, .. }
            | Column::Utf8 { nulls, .. }
            | Column::Bool { nulls, .. } => nulls.as_ref().map_or(0, NullMask::null_count),
        }
    }

    /// Borrow the value at `row`.
    pub fn value(&self, row: usize) -> ValueRef<'_> {
        if self.is_null(row) {
            return ValueRef::Null;
        }
        match self {
            Column::Int64 { data, .. } => ValueRef::Int64(data[row]),
            Column::Float64 { data, .. } => ValueRef::Float64(data[row]),
            Column::Utf8 { codes, dict, .. } => ValueRef::Utf8(dict.value(codes[row])),
            Column::Bool { data, .. } => ValueRef::Bool(data[row]),
        }
    }

    /// Append a dynamically-typed value, checking the type.
    pub fn push(&mut self, value: ValueRef<'_>) -> StorageResult<()> {
        let mismatch = |col: &Column, v: ValueRef<'_>| StorageError::TypeMismatch {
            expected: col.data_type(),
            actual: format!("{v:?}"),
        };
        match (self, value) {
            (Column::Int64 { data, nulls }, ValueRef::Int64(v)) => {
                push_valid(nulls, data.len());
                data.push(v);
            }
            (Column::Float64 { data, nulls }, ValueRef::Float64(v)) => {
                push_valid(nulls, data.len());
                data.push(v);
            }
            // Int literals coerce into float columns (convenient for measures).
            (Column::Float64 { data, nulls }, ValueRef::Int64(v)) => {
                push_valid(nulls, data.len());
                data.push(v as f64);
            }
            (Column::Utf8 { codes, dict, nulls }, ValueRef::Utf8(s)) => {
                push_valid(nulls, codes.len());
                let code = dict.intern(s);
                codes.push(code);
            }
            (Column::Bool { data, nulls }, ValueRef::Bool(v)) => {
                push_valid(nulls, data.len());
                data.push(v);
            }
            (col, ValueRef::Null) => col.push_null(),
            (col, v) => return Err(mismatch(col, v)),
        }
        Ok(())
    }

    /// Append a NULL row.
    pub fn push_null(&mut self) {
        match self {
            Column::Int64 { data, nulls } => {
                ensure_mask(nulls, data.len()).push(true);
                data.push(0);
            }
            Column::Float64 { data, nulls } => {
                ensure_mask(nulls, data.len()).push(true);
                data.push(0.0);
            }
            Column::Utf8 { codes, nulls, .. } => {
                ensure_mask(nulls, codes.len()).push(true);
                codes.push(0);
            }
            Column::Bool { data, nulls } => {
                ensure_mask(nulls, data.len()).push(true);
                data.push(false);
            }
        }
    }

    /// Build a new column containing only the rows at `indices` (in order).
    pub fn gather(&self, indices: &[usize]) -> Column {
        let mut out = Column::new(self.data_type());
        for &i in indices {
            out.push(self.value(i)).expect("gather preserves type");
        }
        out
    }

    /// The column's null mask, if any null has ever been stored. `None`
    /// guarantees every row is valid, which lets vectorised kernels skip
    /// the per-row null test entirely.
    pub fn nulls(&self) -> Option<&NullMask> {
        match self {
            Column::Int64 { nulls, .. }
            | Column::Float64 { nulls, .. }
            | Column::Utf8 { nulls, .. }
            | Column::Bool { nulls, .. } => nulls.as_ref(),
        }
    }

    /// Typed access to int data for vectorised paths.
    pub fn as_int64(&self) -> Option<&[i64]> {
        match self {
            Column::Int64 { data, .. } => Some(data),
            _ => None,
        }
    }

    /// Typed access to float data for vectorised paths.
    pub fn as_float64(&self) -> Option<&[f64]> {
        match self {
            Column::Float64 { data, .. } => Some(data),
            _ => None,
        }
    }

    /// Typed access to string codes and dictionary for vectorised paths.
    pub fn as_utf8(&self) -> Option<(&[u32], &Dictionary)> {
        match self {
            Column::Utf8 { codes, dict, .. } => Some((codes, dict)),
            _ => None,
        }
    }

    /// Typed access to bool data for vectorised paths.
    pub fn as_bool(&self) -> Option<&[bool]> {
        match self {
            Column::Bool { data, .. } => Some(data),
            _ => None,
        }
    }

    /// Approximate heap size of the column payload in bytes.
    ///
    /// Used by the experiment harness to report sample-table space overhead
    /// (Section 5.4.2 of the paper).
    pub fn byte_size(&self) -> usize {
        match self {
            Column::Int64 { data, .. } => data.len() * 8,
            Column::Float64 { data, .. } => data.len() * 8,
            Column::Utf8 { codes, dict, .. } => {
                codes.len() * 4 + dict.iter().map(|(_, s)| s.len() + 24).sum::<usize>()
            }
            Column::Bool { data, .. } => data.len(),
        }
    }
}

fn ensure_mask(nulls: &mut Option<NullMask>, current_len: usize) -> &mut NullMask {
    nulls.get_or_insert_with(|| NullMask::all_valid(current_len))
}

fn push_valid(nulls: &mut Option<NullMask>, _current_len: usize) {
    if let Some(mask) = nulls.as_mut() {
        mask.push(false);
    }
}

/// Incremental builder for a single column (thin convenience over
/// [`Column::push`] with owned [`Value`]s).
#[derive(Debug)]
pub struct ColumnBuilder {
    column: Column,
}

impl ColumnBuilder {
    /// Start building a column of the given type.
    pub fn new(data_type: DataType) -> Self {
        ColumnBuilder {
            column: Column::new(data_type),
        }
    }

    /// Append an owned value.
    pub fn push(&mut self, value: &Value) -> StorageResult<()> {
        self.column.push(value.as_ref())
    }

    /// Finish, yielding the column.
    pub fn finish(self) -> Column {
        self.column
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_all_types() {
        let mut c = Column::new(DataType::Int64);
        c.push(ValueRef::Int64(5)).unwrap();
        c.push(ValueRef::Null).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.value(0).to_owned(), Value::Int64(5));
        assert!(c.value(1).is_null());
        assert_eq!(c.null_count(), 1);

        let mut c = Column::new(DataType::Utf8);
        c.push(ValueRef::Utf8("a")).unwrap();
        c.push(ValueRef::Utf8("b")).unwrap();
        c.push(ValueRef::Utf8("a")).unwrap();
        assert_eq!(c.value(2).to_owned(), Value::Utf8("a".into()));
        let (codes, dict) = c.as_utf8().unwrap();
        assert_eq!(codes, &[0, 1, 0]);
        assert_eq!(dict.len(), 2);

        let mut c = Column::new(DataType::Bool);
        c.push(ValueRef::Bool(true)).unwrap();
        assert_eq!(c.value(0).to_owned(), Value::Bool(true));
    }

    #[test]
    fn int_coerces_into_float_column() {
        let mut c = Column::new(DataType::Float64);
        c.push(ValueRef::Int64(3)).unwrap();
        c.push(ValueRef::Float64(0.5)).unwrap();
        assert_eq!(c.as_float64().unwrap(), &[3.0, 0.5]);
    }

    #[test]
    fn type_mismatch_is_error() {
        let mut c = Column::new(DataType::Int64);
        let err = c.push(ValueRef::Utf8("oops")).unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
        assert_eq!(c.len(), 0, "failed push must not mutate");
    }

    #[test]
    fn null_mask_created_lazily() {
        let mut c = Column::new(DataType::Int64);
        for i in 0..10 {
            c.push(ValueRef::Int64(i)).unwrap();
        }
        assert_eq!(c.null_count(), 0);
        c.push_null();
        assert_eq!(c.null_count(), 1);
        for i in 0..10 {
            assert!(!c.is_null(i));
        }
        assert!(c.is_null(10));
        // Valid pushes after the mask exists keep it in sync.
        c.push(ValueRef::Int64(99)).unwrap();
        assert!(!c.is_null(11));
        assert_eq!(c.len(), 12);
    }

    #[test]
    fn gather_preserves_values_and_nulls() {
        let mut c = Column::new(DataType::Utf8);
        for s in ["x", "y", "z"] {
            c.push(ValueRef::Utf8(s)).unwrap();
        }
        c.push_null();
        let g = c.gather(&[3, 1, 1]);
        assert_eq!(g.len(), 3);
        assert!(g.value(0).is_null());
        assert_eq!(g.value(1).to_owned(), Value::Utf8("y".into()));
        assert_eq!(g.value(2).to_owned(), Value::Utf8("y".into()));
    }

    #[test]
    fn byte_size_nonzero() {
        let mut c = Column::new(DataType::Int64);
        c.push(ValueRef::Int64(1)).unwrap();
        assert_eq!(c.byte_size(), 8);
    }

    #[test]
    fn builder_roundtrip() {
        let mut b = ColumnBuilder::new(DataType::Float64);
        b.push(&Value::Float64(1.5)).unwrap();
        b.push(&Value::Null).unwrap();
        let c = b.finish();
        assert_eq!(c.len(), 2);
        assert!(c.value(1).is_null());
    }
}
