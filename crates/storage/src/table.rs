//! Tables: a schema plus equal-length columns, with optional bitmask column.

use crate::bitmask::{BitSet, BitmaskColumn};
use crate::column::Column;
use crate::error::{StorageError, StorageResult};
use crate::schema::Schema;
use crate::value::{Value, ValueRef};
use crate::zonemap::ZoneMaps;
use std::sync::{Arc, OnceLock};

/// An in-memory columnar table.
///
/// A table optionally carries a [`BitmaskColumn`]: sample tables produced by
/// small group sampling tag every row with the set of small group tables
/// containing it (paper Section 4.2.1); base tables have no bitmask.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Arc<Schema>,
    columns: Vec<Column>,
    bitmask: Option<BitmaskColumn>,
    num_rows: usize,
    /// Lazily-computed (or decoded-from-file) zone maps. Invalidated by
    /// any row mutation; derived data, so recompute is always safe.
    zone_maps: OnceLock<Arc<ZoneMaps>>,
}

impl Table {
    /// Create an empty table with the given schema.
    pub fn empty(name: impl Into<String>, schema: Arc<Schema>) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::new(f.data_type))
            .collect();
        Table {
            name: name.into(),
            schema,
            columns,
            bitmask: None,
            num_rows: 0,
            zone_maps: OnceLock::new(),
        }
    }

    /// Create a table from pre-built columns. All columns must match the
    /// schema's types and have equal length.
    pub fn from_columns(
        name: impl Into<String>,
        schema: Arc<Schema>,
        columns: Vec<Column>,
    ) -> StorageResult<Self> {
        if columns.len() != schema.len() {
            return Err(StorageError::SchemaMismatch(format!(
                "{} columns supplied, schema has {} fields",
                columns.len(),
                schema.len()
            )));
        }
        let mut num_rows = None;
        for (col, field) in columns.iter().zip(schema.fields()) {
            if col.data_type() != field.data_type {
                return Err(StorageError::SchemaMismatch(format!(
                    "column {:?}: type {:?} != declared {:?}",
                    field.name,
                    col.data_type(),
                    field.data_type
                )));
            }
            match num_rows {
                None => num_rows = Some(col.len()),
                Some(n) if n != col.len() => {
                    return Err(StorageError::SchemaMismatch(format!(
                        "column {:?} has {} rows, expected {}",
                        field.name,
                        col.len(),
                        n
                    )))
                }
                _ => {}
            }
        }
        Ok(Table {
            name: name.into(),
            schema,
            columns,
            bitmask: None,
            num_rows: num_rows.unwrap_or(0),
            zone_maps: OnceLock::new(),
        })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the table (used when materialising sample tables).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Whether the table has zero rows.
    pub fn is_empty(&self) -> bool {
        self.num_rows == 0
    }

    /// All columns in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column at index `i`.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> StorageResult<&Column> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// Borrow the cell at `(row, col)`.
    pub fn value(&self, row: usize, col: usize) -> ValueRef<'_> {
        self.columns[col].value(row)
    }

    /// Append a row of owned values (schema order).
    pub fn push_row(&mut self, values: &[Value]) -> StorageResult<()> {
        if values.len() != self.schema.len() {
            return Err(StorageError::ArityMismatch {
                supplied: values.len(),
                expected: self.schema.len(),
            });
        }
        for (col, v) in self.columns.iter_mut().zip(values) {
            col.push(v.as_ref())?;
        }
        if let Some(bm) = self.bitmask.as_mut() {
            bm.push_empty();
        }
        self.num_rows += 1;
        self.zone_maps.take();
        Ok(())
    }

    /// Append a row copied from another table with an identical schema.
    pub fn push_row_from(&mut self, src: &Table, src_row: usize) -> StorageResult<()> {
        if src.schema.len() != self.schema.len() {
            return Err(StorageError::SchemaMismatch(
                "push_row_from: schemas differ in arity".into(),
            ));
        }
        for (dst, src_col) in self.columns.iter_mut().zip(&src.columns) {
            dst.push(src_col.value(src_row))?;
        }
        if let Some(bm) = self.bitmask.as_mut() {
            bm.push_empty();
        }
        self.num_rows += 1;
        self.zone_maps.take();
        Ok(())
    }

    /// Append a row with an explicit bitmask (sample-table construction).
    pub fn push_row_from_with_mask(
        &mut self,
        src: &Table,
        src_row: usize,
        mask: &BitSet,
    ) -> StorageResult<()> {
        for (dst, src_col) in self.columns.iter_mut().zip(&src.columns) {
            dst.push(src_col.value(src_row))?;
        }
        self.bitmask
            .as_mut()
            .expect("table has no bitmask column; call enable_bitmask first")
            .push(mask);
        self.num_rows += 1;
        self.zone_maps.take();
        Ok(())
    }

    /// Attach an (initially empty) bitmask column wide enough for `num_bits`
    /// sample-table indexes. Must be called while the table is empty.
    pub fn enable_bitmask(&mut self, num_bits: usize) {
        assert!(self.num_rows == 0, "enable_bitmask on non-empty table");
        self.bitmask = Some(BitmaskColumn::new(num_bits));
    }

    /// The bitmask column, if present.
    pub fn bitmask(&self) -> Option<&BitmaskColumn> {
        self.bitmask.as_ref()
    }

    /// Attach a fully-built bitmask column (one row per table row). Used
    /// when decoding persisted sample tables.
    pub fn attach_bitmask(&mut self, bitmask: BitmaskColumn) -> StorageResult<()> {
        if bitmask.len() != self.num_rows {
            return Err(StorageError::SchemaMismatch(format!(
                "bitmask has {} rows, table has {}",
                bitmask.len(),
                self.num_rows
            )));
        }
        self.bitmask = Some(bitmask);
        Ok(())
    }

    /// Overwrite the bitmask of an existing row (used when a row is later
    /// discovered to belong to additional sample tables).
    pub fn set_row_bitmask(&mut self, row: usize, mask: &BitSet) -> StorageResult<()> {
        let bm = self
            .bitmask
            .as_mut()
            .ok_or_else(|| StorageError::SchemaMismatch("table has no bitmask column".into()))?;
        if row >= bm.len() {
            return Err(StorageError::RowOutOfBounds { row, len: bm.len() });
        }
        // BitmaskColumn has no in-place set; rebuild the row via push into a
        // scratch column would be O(n). Instead expose via words copy:
        bm.overwrite_row(row, mask);
        Ok(())
    }

    /// Build a new table containing the rows at `indices` (in order),
    /// preserving bitmask rows when present.
    pub fn gather(&self, name: impl Into<String>, indices: &[usize]) -> Table {
        let columns = self.columns.iter().map(|c| c.gather(indices)).collect();
        let bitmask = self.bitmask.as_ref().map(|bm| {
            let mut out = BitmaskColumn::new(bm.width() * 64);
            for &i in indices {
                out.push(&bm.row(i));
            }
            out
        });
        Table {
            name: name.into(),
            schema: Arc::clone(&self.schema),
            columns,
            bitmask,
            num_rows: indices.len(),
            zone_maps: OnceLock::new(),
        }
    }

    /// Approximate heap size of the table payload in bytes (columns plus
    /// bitmask). Used for the Section 5.4.2 space-overhead experiment.
    pub fn byte_size(&self) -> usize {
        let cols: usize = self.columns.iter().map(Column::byte_size).sum();
        let bm = self
            .bitmask
            .as_ref()
            .map_or(0, |b| b.len() * b.width() * 8);
        cols + bm
    }

    /// Extract an entire row as owned values.
    pub fn row(&self, row: usize) -> Vec<Value> {
        (0..self.schema.len())
            .map(|c| self.value(row, c).to_owned())
            .collect()
    }

    /// Decompose the table's rows into scan morsels of `morsel_rows` rows
    /// each (see [`crate::morsel`]).
    pub fn morsels(&self, morsel_rows: usize) -> crate::morsel::MorselIter {
        crate::morsel::morsels(self.num_rows, morsel_rows)
    }

    /// Zone maps for this table, computing them on first use.
    ///
    /// Tables decoded from an AQPT v3 file arrive with their persisted
    /// maps already attached ([`Table::set_zone_maps`]); older files and
    /// in-memory tables compute them lazily here. Any row mutation
    /// invalidates the cached maps, so the summaries always describe the
    /// current data.
    pub fn zone_maps(&self) -> &Arc<ZoneMaps> {
        self.zone_maps
            .get_or_init(|| Arc::new(ZoneMaps::compute(self)))
    }

    /// Zone maps if they have already been computed or decoded; `None`
    /// otherwise. Never triggers a compute (used by the encoder to decide
    /// whether persisting maps costs anything extra).
    pub fn zone_maps_if_present(&self) -> Option<&Arc<ZoneMaps>> {
        self.zone_maps.get()
    }

    /// Attach previously-persisted zone maps (file decode path). Maps
    /// whose geometry does not match the table are rejected as corrupt —
    /// callers fall back to lazy recompute.
    pub fn set_zone_maps(&mut self, maps: Arc<ZoneMaps>) -> StorageResult<()> {
        if maps.rows != self.num_rows || maps.columns.len() != self.columns.len() {
            return Err(StorageError::SchemaMismatch(format!(
                "zone maps cover {} rows x {} columns, table has {} x {}",
                maps.rows,
                maps.columns.len(),
                self.num_rows,
                self.columns.len()
            )));
        }
        self.zone_maps = OnceLock::from(maps);
        Ok(())
    }
}

/// Builder that accumulates rows then yields a [`Table`].
#[derive(Debug)]
pub struct TableBuilder {
    table: Table,
}

impl TableBuilder {
    /// Start building a table.
    pub fn new(name: impl Into<String>, schema: Arc<Schema>) -> Self {
        TableBuilder {
            table: Table::empty(name, schema),
        }
    }

    /// Append a row.
    pub fn push_row(&mut self, values: &[Value]) -> StorageResult<()> {
        self.table.push_row(values)
    }

    /// Finish, yielding the table.
    pub fn finish(self) -> Table {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::DataType;

    fn demo_schema() -> Arc<Schema> {
        SchemaBuilder::new()
            .field("id", DataType::Int64)
            .field("name", DataType::Utf8)
            .field("price", DataType::Float64)
            .build()
            .unwrap()
    }

    fn demo_table() -> Table {
        let mut t = Table::empty("demo", demo_schema());
        t.push_row(&[1i64.into(), "tv".into(), 99.5f64.into()]).unwrap();
        t.push_row(&[2i64.into(), "stereo".into(), 49.0f64.into()]).unwrap();
        t.push_row(&[3i64.into(), Value::Null, 10.0f64.into()]).unwrap();
        t
    }

    #[test]
    fn push_and_read_rows() {
        let t = demo_table();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.value(0, 1).to_owned(), Value::Utf8("tv".into()));
        assert!(t.value(2, 1).is_null());
        assert_eq!(
            t.row(1),
            vec![2i64.into(), "stereo".into(), 49.0f64.into()]
        );
        assert_eq!(t.column_by_name("price").unwrap().len(), 3);
        assert!(t.column_by_name("nope").is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = Table::empty("demo", demo_schema());
        let err = t.push_row(&[1i64.into()]).unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { .. }));
        assert_eq!(t.num_rows(), 0);
    }

    #[test]
    fn from_columns_validation() {
        let schema = demo_schema();
        let cols = vec![
            Column::new(DataType::Int64),
            Column::new(DataType::Utf8),
            Column::new(DataType::Float64),
        ];
        let t = Table::from_columns("t", Arc::clone(&schema), cols).unwrap();
        assert_eq!(t.num_rows(), 0);

        // Wrong arity.
        let cols = vec![Column::new(DataType::Int64)];
        assert!(Table::from_columns("t", Arc::clone(&schema), cols).is_err());

        // Wrong type.
        let cols = vec![
            Column::new(DataType::Utf8),
            Column::new(DataType::Utf8),
            Column::new(DataType::Float64),
        ];
        assert!(Table::from_columns("t", Arc::clone(&schema), cols).is_err());

        // Ragged lengths.
        let mut c0 = Column::new(DataType::Int64);
        c0.push(ValueRef::Int64(1)).unwrap();
        let cols = vec![
            c0,
            Column::new(DataType::Utf8),
            Column::new(DataType::Float64),
        ];
        assert!(Table::from_columns("t", schema, cols).is_err());
    }

    #[test]
    fn bitmask_rows() {
        let src = demo_table();
        let mut t = Table::empty("sample", demo_schema());
        t.enable_bitmask(3);
        t.push_row_from_with_mask(&src, 0, &BitSet::from_bits(3, [0])).unwrap();
        t.push_row_from_with_mask(&src, 2, &BitSet::from_bits(3, [1, 2])).unwrap();
        assert_eq!(t.num_rows(), 2);
        let bm = t.bitmask().unwrap();
        assert!(bm.row_intersects(1, &BitSet::from_bits(3, [2])));
        assert!(!bm.row_intersects(0, &BitSet::from_bits(3, [2])));
        // Values came across.
        assert_eq!(t.value(0, 0).to_owned(), Value::Int64(1));
        assert!(t.value(1, 1).is_null());
    }

    #[test]
    fn set_row_bitmask_overwrites() {
        let src = demo_table();
        let mut t = Table::empty("sample", demo_schema());
        t.enable_bitmask(4);
        t.push_row_from_with_mask(&src, 0, &BitSet::from_bits(4, [0])).unwrap();
        t.set_row_bitmask(0, &BitSet::from_bits(4, [3])).unwrap();
        let bm = t.bitmask().unwrap();
        assert!(!bm.row_intersects(0, &BitSet::from_bits(4, [0])));
        assert!(bm.row_intersects(0, &BitSet::from_bits(4, [3])));
        assert!(t.set_row_bitmask(5, &BitSet::with_capacity(4)).is_err());
    }

    #[test]
    fn gather_subsets() {
        let t = demo_table();
        let g = t.gather("sub", &[2, 0]);
        assert_eq!(g.num_rows(), 2);
        assert_eq!(g.value(0, 0).to_owned(), Value::Int64(3));
        assert_eq!(g.value(1, 0).to_owned(), Value::Int64(1));
        assert_eq!(g.schema(), t.schema());
    }

    #[test]
    fn mixed_plain_and_masked_pushes_keep_bitmask_aligned() {
        let src = demo_table();
        let mut t = Table::empty("s", demo_schema());
        t.enable_bitmask(2);
        t.push_row_from(&src, 0).unwrap(); // empty mask
        t.push_row_from_with_mask(&src, 1, &BitSet::from_bits(2, [1])).unwrap();
        let bm = t.bitmask().unwrap();
        assert_eq!(bm.len(), 2);
        assert!(!bm.row_intersects(0, &BitSet::from_bits(2, [0, 1])));
        assert!(bm.row_intersects(1, &BitSet::from_bits(2, [1])));
    }

    #[test]
    fn byte_size_accounts_for_bitmask() {
        let src = demo_table();
        let mut t = Table::empty("s", demo_schema());
        t.enable_bitmask(2);
        t.push_row_from(&src, 0).unwrap();
        assert!(t.byte_size() >= 8 + 4 + 8 + 8);
    }

    #[test]
    fn builder() {
        let mut b = TableBuilder::new("t", demo_schema());
        b.push_row(&[7i64.into(), "x".into(), 1.0f64.into()]).unwrap();
        let t = b.finish();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.name(), "t");
    }
}
