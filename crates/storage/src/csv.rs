//! CSV import/export.
//!
//! Lets adopters run the AQP system over their own data: load a CSV into
//! a [`Table`] (with schema inference or an explicit schema), preprocess
//! it, and answer queries approximately. The dialect is deliberately
//! plain — comma separator, `"` quoting with `""` escapes, a mandatory
//! header row, empty fields as NULL — which covers what warehouse exports
//! produce.

use crate::error::{StorageError, StorageResult};
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::{DataType, Value};
use std::sync::Arc;

fn bad(msg: impl Into<String>) -> StorageError {
    StorageError::Codec(msg.into())
}

/// Split one CSV record into fields, honouring quotes. Returns `None` for
/// an unterminated quote (caller reports the line number).
fn split_record(line: &str) -> Option<Vec<String>> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    current.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if current.is_empty() => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut current));
            }
            c => current.push(c),
        }
    }
    if in_quotes {
        return None;
    }
    fields.push(current);
    Some(fields)
}

/// Quote a field if it needs it.
fn quote_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Infer the narrowest column type consistent with a set of raw fields.
/// Empty strings are NULL and don't constrain the type; the priority is
/// Int64 → Float64 → Bool → Utf8.
fn infer_type<'a>(samples: impl Iterator<Item = &'a str>) -> DataType {
    let mut any = false;
    let mut all_int = true;
    let mut all_float = true;
    let mut all_bool = true;
    for s in samples {
        if s.is_empty() {
            continue;
        }
        any = true;
        all_int &= s.parse::<i64>().is_ok();
        all_float &= s.parse::<f64>().is_ok();
        all_bool &= matches!(s.to_ascii_lowercase().as_str(), "true" | "false");
    }
    if !any {
        return DataType::Utf8; // all-NULL column: default to string
    }
    if all_int {
        DataType::Int64
    } else if all_float {
        DataType::Float64
    } else if all_bool {
        DataType::Bool
    } else {
        DataType::Utf8
    }
}

fn parse_cell(raw: &str, dt: DataType, line: usize, column: &str) -> StorageResult<Value> {
    if raw.is_empty() {
        return Ok(Value::Null);
    }
    let err = || bad(format!("line {line}: cannot parse {raw:?} as {dt} for column {column:?}"));
    Ok(match dt {
        DataType::Int64 => Value::Int64(raw.parse().map_err(|_| err())?),
        DataType::Float64 => Value::Float64(raw.parse().map_err(|_| err())?),
        DataType::Bool => match raw.to_ascii_lowercase().as_str() {
            "true" => Value::Bool(true),
            "false" => Value::Bool(false),
            _ => return Err(err()),
        },
        DataType::Utf8 => Value::Utf8(raw.to_owned()),
    })
}

/// Parse CSV text into a table, inferring column types from the data.
///
/// The first record is the header. Types are inferred over all rows
/// (narrowest of Int64 → Float64 → Bool → Utf8); empty fields are NULL.
pub fn table_from_csv(name: impl Into<String>, text: &str) -> StorageResult<Table> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| bad("empty CSV: missing header"))?;
    let names = split_record(header).ok_or_else(|| bad("line 1: unterminated quote"))?;
    if names.iter().any(String::is_empty) {
        return Err(bad("header has an empty column name"));
    }

    // Materialise raw records once (type inference needs two looks).
    let mut records: Vec<(usize, Vec<String>)> = Vec::new();
    for (idx, line) in lines {
        if line.is_empty() {
            continue;
        }
        let record =
            split_record(line).ok_or_else(|| bad(format!("line {}: unterminated quote", idx + 1)))?;
        if record.len() != names.len() {
            return Err(bad(format!(
                "line {}: {} fields, header has {}",
                idx + 1,
                record.len(),
                names.len()
            )));
        }
        records.push((idx + 1, record));
    }

    let types: Vec<DataType> = (0..names.len())
        .map(|c| infer_type(records.iter().map(|(_, r)| r[c].as_str())))
        .collect();
    let schema = Schema::new(
        names
            .iter()
            .zip(&types)
            .map(|(n, t)| Field::new(n.clone(), *t))
            .collect(),
    )?;
    table_from_records(name, schema, &names, &records)
}

/// Parse CSV text against an explicit schema (header columns may appear
/// in any order; extra CSV columns are rejected).
pub fn table_from_csv_with_schema(
    name: impl Into<String>,
    schema: Arc<Schema>,
    text: &str,
) -> StorageResult<Table> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| bad("empty CSV: missing header"))?;
    let names = split_record(header).ok_or_else(|| bad("line 1: unterminated quote"))?;
    for n in &names {
        if !schema.contains(n) {
            return Err(bad(format!("CSV column {n:?} not in schema")));
        }
    }
    if names.len() != schema.len() {
        return Err(bad(format!(
            "CSV has {} columns, schema expects {}",
            names.len(),
            schema.len()
        )));
    }
    let mut records = Vec::new();
    for (idx, line) in lines {
        if line.is_empty() {
            continue;
        }
        let record =
            split_record(line).ok_or_else(|| bad(format!("line {}: unterminated quote", idx + 1)))?;
        if record.len() != names.len() {
            return Err(bad(format!(
                "line {}: {} fields, header has {}",
                idx + 1,
                record.len(),
                names.len()
            )));
        }
        records.push((idx + 1, record));
    }
    table_from_records(name, schema, &names, &records)
}

fn table_from_records(
    name: impl Into<String>,
    schema: Arc<Schema>,
    csv_order: &[String],
    records: &[(usize, Vec<String>)],
) -> StorageResult<Table> {
    // Map schema position → CSV field position.
    let positions: Vec<usize> = schema
        .fields()
        .iter()
        .map(|f| {
            csv_order
                .iter()
                .position(|n| *n == f.name)
                .ok_or_else(|| bad(format!("schema column {:?} missing from CSV", f.name)))
        })
        .collect::<StorageResult<_>>()?;

    let mut table = Table::empty(name, Arc::clone(&schema));
    let mut row = Vec::with_capacity(schema.len());
    for (line, record) in records {
        row.clear();
        for (field, &pos) in schema.fields().iter().zip(&positions) {
            row.push(parse_cell(&record[pos], field.data_type, *line, &field.name)?);
        }
        table.push_row(&row)?;
    }
    Ok(table)
}

/// Render a table as CSV text (header + one record per row; NULL as
/// empty field).
pub fn table_to_csv(table: &Table) -> String {
    let mut out = String::new();
    let header: Vec<String> = table
        .schema()
        .names()
        .map(quote_field)
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in 0..table.num_rows() {
        let record: Vec<String> = (0..table.schema().len())
            .map(|c| {
                let v = table.value(row, c);
                if v.is_null() {
                    String::new()
                } else {
                    quote_field(&v.to_string())
                }
            })
            .collect();
        out.push_str(&record.join(","));
        out.push('\n');
    }
    out
}

/// Read a table from a CSV file with schema inference.
pub fn read_csv_file(
    name: impl Into<String>,
    path: impl AsRef<std::path::Path>,
) -> std::io::Result<Table> {
    let text = std::fs::read_to_string(path)?;
    table_from_csv(name, &text).map_err(std::io::Error::other)
}

/// Write a table to a CSV file.
pub fn write_csv_file(table: &Table, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    std::fs::write(path, table_to_csv(table))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;

    const SAMPLE: &str = "\
id,name,price,active
1,tv,9.5,true
2,stereo,19.25,false
3,,3.0,true
4,\"with, comma\",,false
";

    #[test]
    fn infer_and_parse() {
        let t = table_from_csv("demo", SAMPLE).unwrap();
        assert_eq!(t.num_rows(), 4);
        let s = t.schema();
        assert_eq!(s.field("id").unwrap().data_type, DataType::Int64);
        assert_eq!(s.field("name").unwrap().data_type, DataType::Utf8);
        assert_eq!(s.field("price").unwrap().data_type, DataType::Float64);
        assert_eq!(s.field("active").unwrap().data_type, DataType::Bool);
        assert_eq!(t.value(0, 1).to_owned(), Value::Utf8("tv".into()));
        assert!(t.value(2, 1).is_null(), "empty field is NULL");
        assert!(t.value(3, 2).is_null());
        assert_eq!(t.value(3, 1).to_owned(), Value::Utf8("with, comma".into()));
    }

    #[test]
    fn int_column_with_floats_widens() {
        let t = table_from_csv("t", "x\n1\n2.5\n3\n").unwrap();
        assert_eq!(t.schema().field("x").unwrap().data_type, DataType::Float64);
        assert_eq!(t.value(0, 0).to_owned(), Value::Float64(1.0));
    }

    #[test]
    fn mixed_column_falls_back_to_string() {
        let t = table_from_csv("t", "x\n1\nhello\n").unwrap();
        assert_eq!(t.schema().field("x").unwrap().data_type, DataType::Utf8);
    }

    #[test]
    fn all_null_column_is_string() {
        let t = table_from_csv("t", "x,y\n,1\n,2\n").unwrap();
        assert_eq!(t.schema().field("x").unwrap().data_type, DataType::Utf8);
        assert_eq!(t.column_by_name("x").unwrap().null_count(), 2);
    }

    #[test]
    fn quotes_and_escapes() {
        let t = table_from_csv("t", "a\n\"says \"\"hi\"\"\"\n").unwrap();
        assert_eq!(t.value(0, 0).to_owned(), Value::Utf8("says \"hi\"".into()));
    }

    #[test]
    fn errors() {
        assert!(table_from_csv("t", "").is_err(), "empty input");
        assert!(table_from_csv("t", "a,\n1,2\n").is_err(), "empty header name");
        assert!(table_from_csv("t", "a,b\n1\n").is_err(), "ragged row");
        assert!(table_from_csv("t", "a\n\"oops\n").is_err(), "unterminated quote");
    }

    #[test]
    fn explicit_schema_reorders_and_validates() {
        let schema = SchemaBuilder::new()
            .field("price", DataType::Float64)
            .field("id", DataType::Int64)
            .build()
            .unwrap();
        // CSV order differs from schema order.
        let t = table_from_csv_with_schema("t", schema, "id,price\n7,1.5\n").unwrap();
        assert_eq!(t.value(0, 0).to_owned(), Value::Float64(1.5));
        assert_eq!(t.value(0, 1).to_owned(), Value::Int64(7));

        let schema = SchemaBuilder::new().field("id", DataType::Int64).build().unwrap();
        assert!(table_from_csv_with_schema("t", Arc::clone(&schema), "zz\n1\n").is_err());
        assert!(table_from_csv_with_schema("t", schema, "id\nnotanint\n").is_err());
    }

    #[test]
    fn roundtrip() {
        let t = table_from_csv("demo", SAMPLE).unwrap();
        let rendered = table_to_csv(&t);
        let back = table_from_csv("demo", &rendered).unwrap();
        assert_eq!(back.num_rows(), t.num_rows());
        for row in 0..t.num_rows() {
            for col in 0..t.schema().len() {
                assert_eq!(
                    t.value(row, col).to_owned(),
                    back.value(row, col).to_owned(),
                    "cell ({row},{col})"
                );
            }
        }
        assert!(rendered.contains("\"with, comma\""));
    }

    #[test]
    fn file_roundtrip() {
        let t = table_from_csv("demo", SAMPLE).unwrap();
        let dir = std::env::temp_dir().join(format!("aqp_csv_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        write_csv_file(&t, &path).unwrap();
        let back = read_csv_file("demo", &path).unwrap();
        assert_eq!(back.num_rows(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
