//! Scalar values and data types.
//!
//! [`Value`] is the owned dynamic scalar used at API boundaries (row
//! construction, query literals, group keys). [`ValueRef`] is its borrowed
//! counterpart used on hot read paths to avoid allocating strings.
//!
//! `Value` implements `Eq`/`Hash`/`Ord` with a total order (floats are
//! compared by their IEEE-754 total ordering via `f64::total_cmp`, and hashed
//! by bit pattern) so that values can serve directly as hash-aggregation
//! group keys.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The logical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE-754 float.
    Float64,
    /// UTF-8 string (dictionary-encoded in storage).
    Utf8,
    /// Boolean.
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int64 => "Int64",
            DataType::Float64 => "Float64",
            DataType::Utf8 => "Utf8",
            DataType::Bool => "Bool",
        };
        f.write_str(s)
    }
}

impl DataType {
    /// Whether the type is numeric (usable as a SUM/AVG aggregation input).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int64 | DataType::Float64)
    }
}

/// An owned dynamically-typed scalar value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int64(i64),
    /// 64-bit float.
    Float64(f64),
    /// UTF-8 string.
    Utf8(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// The data type of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int64(_) => Some(DataType::Int64),
            Value::Float64(_) => Some(DataType::Float64),
            Value::Utf8(_) => Some(DataType::Utf8),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// Whether this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret the value as an `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int64(v) => Some(*v as f64),
            Value::Float64(v) => Some(*v),
            _ => None,
        }
    }

    /// Interpret the value as an `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int64(v) => Some(*v),
            _ => None,
        }
    }

    /// Interpret the value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Utf8(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Borrow this value as a [`ValueRef`].
    pub fn as_ref(&self) -> ValueRef<'_> {
        match self {
            Value::Null => ValueRef::Null,
            Value::Int64(v) => ValueRef::Int64(*v),
            Value::Float64(v) => ValueRef::Float64(*v),
            Value::Utf8(s) => ValueRef::Utf8(s.as_str()),
            Value::Bool(b) => ValueRef::Bool(*b),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.as_ref().cmp(&other.as_ref())
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_ref().fmt(f)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Utf8(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Utf8(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A borrowed dynamically-typed scalar value.
///
/// Used on read paths so string cells can be inspected without allocation.
#[derive(Debug, Clone, Copy)]
pub enum ValueRef<'a> {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int64(i64),
    /// 64-bit float.
    Float64(f64),
    /// UTF-8 string slice.
    Utf8(&'a str),
    /// Boolean.
    Bool(bool),
}

impl<'a> ValueRef<'a> {
    /// Convert into an owned [`Value`].
    pub fn to_owned(self) -> Value {
        match self {
            ValueRef::Null => Value::Null,
            ValueRef::Int64(v) => Value::Int64(v),
            ValueRef::Float64(v) => Value::Float64(v),
            ValueRef::Utf8(s) => Value::Utf8(s.to_owned()),
            ValueRef::Bool(b) => Value::Bool(b),
        }
    }

    /// Whether this value is NULL.
    pub fn is_null(self) -> bool {
        matches!(self, ValueRef::Null)
    }

    /// Interpret the value as an `f64` if it is numeric.
    pub fn as_f64(self) -> Option<f64> {
        match self {
            ValueRef::Int64(v) => Some(v as f64),
            ValueRef::Float64(v) => Some(v),
            _ => None,
        }
    }

    /// Rank used to give values of different types a consistent total order.
    fn type_rank(self) -> u8 {
        match self {
            ValueRef::Null => 0,
            ValueRef::Bool(_) => 1,
            ValueRef::Int64(_) => 2,
            ValueRef::Float64(_) => 3,
            ValueRef::Utf8(_) => 4,
        }
    }
}

impl PartialEq for ValueRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (ValueRef::Null, ValueRef::Null) => true,
            (ValueRef::Int64(a), ValueRef::Int64(b)) => a == b,
            // Floats compare by bit pattern so that Eq/Hash agree; NaN == NaN
            // as a group key, which is what hash aggregation needs.
            (ValueRef::Float64(a), ValueRef::Float64(b)) => a.to_bits() == b.to_bits(),
            (ValueRef::Utf8(a), ValueRef::Utf8(b)) => a == b,
            (ValueRef::Bool(a), ValueRef::Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for ValueRef<'_> {}

impl PartialOrd for ValueRef<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ValueRef<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (ValueRef::Null, ValueRef::Null) => Ordering::Equal,
            (ValueRef::Int64(a), ValueRef::Int64(b)) => a.cmp(b),
            (ValueRef::Float64(a), ValueRef::Float64(b)) => a.total_cmp(b),
            (ValueRef::Utf8(a), ValueRef::Utf8(b)) => a.cmp(b),
            (ValueRef::Bool(a), ValueRef::Bool(b)) => a.cmp(b),
            // Mixed numeric comparison: compare as f64 where both numeric.
            (ValueRef::Int64(a), ValueRef::Float64(b)) => (*a as f64).total_cmp(b),
            (ValueRef::Float64(a), ValueRef::Int64(b)) => a.total_cmp(&(*b as f64)),
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

impl Hash for ValueRef<'_> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            ValueRef::Null => 0u8.hash(state),
            ValueRef::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            ValueRef::Int64(v) => {
                2u8.hash(state);
                v.hash(state);
            }
            ValueRef::Float64(v) => {
                3u8.hash(state);
                v.to_bits().hash(state);
            }
            ValueRef::Utf8(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for ValueRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueRef::Null => f.write_str("NULL"),
            ValueRef::Int64(v) => write!(f, "{v}"),
            ValueRef::Float64(v) => write!(f, "{v}"),
            ValueRef::Utf8(s) => write!(f, "{s}"),
            ValueRef::Bool(b) => write!(f, "{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn value_roundtrip_ref() {
        let vals = [
            Value::Null,
            Value::Int64(-7),
            Value::Float64(3.25),
            Value::Utf8("abc".into()),
            Value::Bool(true),
        ];
        for v in &vals {
            assert_eq!(&v.as_ref().to_owned(), v);
        }
    }

    #[test]
    fn eq_hash_agree_for_floats() {
        let a = Value::Float64(f64::NAN);
        let b = Value::Float64(f64::NAN);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        // Positive and negative zero differ bitwise, so they are distinct keys.
        assert_ne!(Value::Float64(0.0), Value::Float64(-0.0));
    }

    #[test]
    fn ordering_is_total() {
        let mut vals = [Value::Utf8("b".into()),
            Value::Int64(2),
            Value::Null,
            Value::Float64(1.5),
            Value::Bool(false),
            Value::Utf8("a".into()),
            Value::Int64(1)];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        // Mixed numerics interleave by value.
        let pos_int = vals.iter().position(|v| *v == Value::Int64(1)).unwrap();
        let pos_float = vals.iter().position(|v| *v == Value::Float64(1.5)).unwrap();
        let pos_int2 = vals.iter().position(|v| *v == Value::Int64(2)).unwrap();
        assert!(pos_int < pos_float && pos_float < pos_int2);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(4i64).as_i64(), Some(4));
        assert_eq!(Value::from(4i64).as_f64(), Some(4.0));
        assert_eq!(Value::from(2.5f64).as_f64(), Some(2.5));
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert!(Value::from(true) == Value::Bool(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::from(1i64).data_type(), Some(DataType::Int64));
    }

    #[test]
    fn numeric_types() {
        assert!(DataType::Int64.is_numeric());
        assert!(DataType::Float64.is_numeric());
        assert!(!DataType::Utf8.is_numeric());
        assert!(!DataType::Bool.is_numeric());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int64(5).to_string(), "5");
        assert_eq!(Value::Utf8("x".into()).to_string(), "x");
        assert_eq!(DataType::Utf8.to_string(), "Utf8");
    }
}
