//! Schemas: ordered, named, typed field lists.

use crate::error::{StorageError, StorageResult};
use crate::value::DataType;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// One named, typed field of a schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Field name. Within the AQP system, fields in denormalised (joined)
    /// views use qualified `table.column` names so the same query text can
    /// run against the base star schema or against a join synopsis.
    pub name: String,
    /// The field's data type.
    pub data_type: DataType,
}

impl Field {
    /// Create a field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
        }
    }
}

/// An ordered collection of fields with by-name lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
    index: HashMap<String, usize>,
}

impl Schema {
    /// Build a schema from fields, rejecting duplicates.
    pub fn new(fields: Vec<Field>) -> StorageResult<Arc<Self>> {
        let mut index = HashMap::with_capacity(fields.len());
        for (i, f) in fields.iter().enumerate() {
            if index.insert(f.name.clone(), i).is_some() {
                return Err(StorageError::DuplicateField(f.name.clone()));
            }
        }
        Ok(Arc::new(Schema { fields, index }))
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the field named `name`.
    pub fn index_of(&self, name: &str) -> StorageResult<usize> {
        self.index
            .get(name)
            .copied()
            .ok_or_else(|| StorageError::ColumnNotFound { name: name.into() })
    }

    /// The field named `name`.
    pub fn field(&self, name: &str) -> StorageResult<&Field> {
        Ok(&self.fields[self.index_of(name)?])
    }

    /// Whether a field with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// Field names in declaration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(|f| f.name.as_str())
    }
}

/// Fluent builder for [`Schema`].
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    fields: Vec<Field>,
}

impl SchemaBuilder {
    /// Start an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a field.
    pub fn field(mut self, name: impl Into<String>, data_type: DataType) -> Self {
        self.fields.push(Field::new(name, data_type));
        self
    }

    /// Finish, validating uniqueness of names.
    pub fn build(self) -> StorageResult<Arc<Schema>> {
        Schema::new(self.fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let s = SchemaBuilder::new()
            .field("a", DataType::Int64)
            .field("b", DataType::Utf8)
            .build()
            .unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert_eq!(s.field("a").unwrap().data_type, DataType::Int64);
        assert!(s.contains("a"));
        assert!(!s.contains("c"));
        assert_eq!(s.names().collect::<Vec<_>>(), vec!["a", "b"]);
    }

    #[test]
    fn missing_column_is_error() {
        let s = SchemaBuilder::new().field("a", DataType::Int64).build().unwrap();
        assert!(matches!(
            s.index_of("zzz"),
            Err(StorageError::ColumnNotFound { .. })
        ));
    }

    #[test]
    fn duplicate_field_rejected() {
        let r = SchemaBuilder::new()
            .field("a", DataType::Int64)
            .field("a", DataType::Utf8)
            .build();
        assert!(matches!(r, Err(StorageError::DuplicateField(_))));
    }
}
