//! Morsel decomposition of a row range.
//!
//! A *morsel* is a fixed-size contiguous run of rows — the unit of work
//! the parallel executor hands to worker threads (morsel-driven
//! parallelism, Leis et al., SIGMOD 2014). Morsel boundaries depend only
//! on the row count and the configured morsel size, **never** on the
//! number of threads: this is what makes parallel aggregation
//! reproducible, because the per-morsel partial states are always
//! identical and are merged in morsel-index order regardless of which
//! thread computed them.

/// Default rows per morsel.
///
/// Large enough that per-morsel hash-table and scheduling overhead is
/// amortised over thousands of rows, small enough that a skewed scan
/// still splits into many work units for load balancing (a 60 k-row
/// TPC-H view yields ~15 morsels).
pub const DEFAULT_MORSEL_ROWS: usize = 4096;

/// One contiguous unit of scan work: rows `start..end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    /// Position of this morsel in the scan (0-based, dense).
    pub index: usize,
    /// First row (inclusive).
    pub start: usize,
    /// One past the last row (exclusive).
    pub end: usize,
}

impl Morsel {
    /// Rows in this morsel.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the morsel covers no rows.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Iterator over the morsels of `0..rows`.
///
/// Every morsel has exactly `morsel_rows` rows except possibly the last.
/// `morsel_rows` is clamped to at least 1. Zero rows yield zero morsels.
#[derive(Debug, Clone)]
pub struct MorselIter {
    rows: usize,
    morsel_rows: usize,
    next: usize,
}

impl MorselIter {
    /// Decompose `0..rows` into morsels of `morsel_rows` rows.
    pub fn new(rows: usize, morsel_rows: usize) -> Self {
        MorselIter {
            rows,
            morsel_rows: morsel_rows.max(1),
            next: 0,
        }
    }

    /// Total number of morsels this iterator yields.
    pub fn count_total(&self) -> usize {
        self.rows.div_ceil(self.morsel_rows)
    }

    /// The `i`-th morsel (independent of iteration state).
    pub fn get(&self, i: usize) -> Option<Morsel> {
        let start = i.checked_mul(self.morsel_rows)?;
        if start >= self.rows {
            return None;
        }
        Some(Morsel {
            index: i,
            start,
            end: (start + self.morsel_rows).min(self.rows),
        })
    }
}

impl Iterator for MorselIter {
    type Item = Morsel;

    fn next(&mut self) -> Option<Morsel> {
        let m = self.get(self.next)?;
        self.next += 1;
        Some(m)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.count_total().saturating_sub(self.next);
        (left, Some(left))
    }
}

impl ExactSizeIterator for MorselIter {}

/// Decompose `0..rows` into morsels of `morsel_rows` rows each.
pub fn morsels(rows: usize, morsel_rows: usize) -> MorselIter {
    MorselIter::new(rows, morsel_rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division() {
        let ms: Vec<Morsel> = morsels(8192, 4096).collect();
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0], Morsel { index: 0, start: 0, end: 4096 });
        assert_eq!(ms[1], Morsel { index: 1, start: 4096, end: 8192 });
    }

    #[test]
    fn ragged_tail() {
        let ms: Vec<Morsel> = morsels(10_000, 4096).collect();
        assert_eq!(ms.len(), 3);
        assert_eq!(ms[2].start, 8192);
        assert_eq!(ms[2].end, 10_000);
        assert_eq!(ms[2].len(), 1808);
        assert!(!ms[2].is_empty());
    }

    #[test]
    fn fewer_rows_than_one_morsel() {
        let ms: Vec<Morsel> = morsels(7, 4096).collect();
        assert_eq!(ms.len(), 1);
        assert_eq!((ms[0].start, ms[0].end), (0, 7));
    }

    #[test]
    fn zero_rows_and_zero_morsel_size() {
        assert_eq!(morsels(0, 4096).count(), 0);
        // morsel_rows clamps to 1 instead of dividing by zero.
        assert_eq!(morsels(3, 0).count(), 3);
    }

    #[test]
    fn boundaries_cover_every_row_exactly_once() {
        for rows in [0usize, 1, 100, 4095, 4096, 4097, 12_288, 12_289] {
            let ms: Vec<Morsel> = morsels(rows, 4096).collect();
            assert_eq!(ms.len(), rows.div_ceil(4096));
            let mut covered = 0;
            for (i, m) in ms.iter().enumerate() {
                assert_eq!(m.index, i);
                assert_eq!(m.start, covered);
                covered = m.end;
            }
            assert_eq!(covered, rows);
        }
    }

    #[test]
    fn random_access_matches_iteration() {
        let it = MorselIter::new(10_000, 1024);
        assert_eq!(it.count_total(), 10);
        let collected: Vec<Morsel> = it.clone().collect();
        for (i, m) in collected.iter().enumerate() {
            assert_eq!(it.get(i), Some(*m));
        }
        assert_eq!(it.get(10), None);
        assert_eq!(it.len(), 10);
    }
}
