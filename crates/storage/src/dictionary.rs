//! String dictionaries for dictionary-encoded UTF-8 columns.

use std::collections::HashMap;

/// An append-only mapping between strings and dense `u32` codes.
///
/// Used by [`crate::Column::Utf8`] so that string columns store one `u32` per
/// row plus a shared dictionary. Group-by and IN-list predicate evaluation on
/// string columns then operate on integer codes, which is the main reason
/// the AQP runtime stays fast on wide categorical schemas.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    values: Vec<String>,
    index: HashMap<String, u32>,
}

impl Dictionary {
    /// Create an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Intern `s`, returning its code (existing or freshly assigned).
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&code) = self.index.get(s) {
            return code;
        }
        let code = u32::try_from(self.values.len()).expect("dictionary overflow: > u32::MAX distinct strings");
        self.values.push(s.to_owned());
        self.index.insert(s.to_owned(), code);
        code
    }

    /// Look up the code for `s` without inserting.
    pub fn code(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// The string for `code`. Panics if the code was never assigned.
    pub fn value(&self, code: u32) -> &str {
        &self.values[code as usize]
    }

    /// The string for `code`, or `None` if unassigned.
    pub fn get(&self, code: u32) -> Option<&str> {
        self.values.get(code as usize).map(String::as_str)
    }

    /// Iterate over `(code, string)` pairs in code order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("apple");
        let b = d.intern("banana");
        assert_ne!(a, b);
        assert_eq!(d.intern("apple"), a);
        assert_eq!(d.len(), 2);
        assert_eq!(d.value(a), "apple");
        assert_eq!(d.value(b), "banana");
    }

    #[test]
    fn code_lookup() {
        let mut d = Dictionary::new();
        d.intern("x");
        assert_eq!(d.code("x"), Some(0));
        assert_eq!(d.code("y"), None);
        assert_eq!(d.get(0), Some("x"));
        assert_eq!(d.get(9), None);
    }

    #[test]
    fn iteration_order_is_code_order() {
        let mut d = Dictionary::new();
        for s in ["c", "a", "b"] {
            d.intern(s);
        }
        let collected: Vec<_> = d.iter().map(|(c, s)| (c, s.to_owned())).collect();
        assert_eq!(
            collected,
            vec![(0, "c".to_owned()), (1, "a".to_owned()), (2, "b".to_owned())]
        );
    }
}
