//! Zone maps: per-block column summaries for scan pruning.
//!
//! Every column of a table is summarised in fixed blocks of
//! [`ZONE_BLOCK_ROWS`] rows (the default morsel size, so morsel
//! boundaries always coincide with block boundaries). Each
//! [`BlockSummary`] records the row count, null count and — per column
//! type — typed bounds:
//!
//! * `Int64` — min/max over the non-null rows;
//! * `Float64` — min/max under the IEEE-754 **total order**
//!   (`f64::total_cmp`), exactly the order the compiled `FloatCmp`
//!   predicate kernel uses, so NaNs sort above +inf and `-0.0 < +0.0`
//!   and a bounds check can never disagree with the row-at-a-time
//!   predicate;
//! * `Utf8` — a presence bitmap over the dictionary codes that occur in
//!   the block (dictionary order is value order only per-table, but
//!   set-membership predicates compile to code sets, so presence is the
//!   useful summary);
//! * `Bool` — no bounds (blocks are never pruned by bounds; an all-null
//!   block can still be skipped via the null count).
//!
//! Zone maps are derived data: recomputing them from the column data
//! always yields the same summaries, so a missing or corrupted
//! persisted zone-map section degrades to recompute-on-demand (or to
//! unpruned scans), never to a load failure.

use crate::column::Column;
use crate::table::Table;

/// Rows per zone-map block. Equal to [`crate::morsel::DEFAULT_MORSEL_ROWS`]
/// so default-size morsels map 1:1 onto blocks.
pub const ZONE_BLOCK_ROWS: usize = crate::morsel::DEFAULT_MORSEL_ROWS;

/// Typed bounds for one block of one column.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockBounds {
    /// Min/max over non-null `Int64` rows.
    Int {
        /// Smallest non-null value in the block.
        min: i64,
        /// Largest non-null value in the block.
        max: i64,
    },
    /// Min/max over non-null `Float64` rows under `f64::total_cmp`.
    Float {
        /// Smallest non-null value (total order).
        min: f64,
        /// Largest non-null value (total order).
        max: f64,
    },
    /// Presence bitmap over dictionary codes occurring in the block.
    Dict {
        /// One bit per dictionary code, little-endian u64 words.
        words: Vec<u64>,
    },
}

/// Summary of one block of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSummary {
    /// Rows covered by the block (the last block may be short).
    pub rows: u32,
    /// NULL rows in the block.
    pub null_count: u32,
    /// Typed bounds, or `None` when the block is all-null or the column
    /// type carries no bounds (`Bool`).
    pub bounds: Option<BlockBounds>,
}

impl BlockSummary {
    /// Whether every row in the block is NULL.
    pub fn all_null(&self) -> bool {
        self.null_count == self.rows
    }
}

/// Zone map for one column: one [`BlockSummary`] per block.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnZoneMap {
    /// Block summaries in block order.
    pub blocks: Vec<BlockSummary>,
}

/// Zone maps for every column of a table.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneMaps {
    /// Rows per block ([`ZONE_BLOCK_ROWS`] for maps built here).
    pub block_rows: usize,
    /// Total rows summarised (must match the table's row count for the
    /// maps to be usable).
    pub rows: usize,
    /// Per-column maps in schema order.
    pub columns: Vec<ColumnZoneMap>,
}

impl ZoneMaps {
    /// Number of blocks covering `rows` rows at `block_rows` per block.
    pub fn num_blocks(&self) -> usize {
        self.rows.div_ceil(self.block_rows.max(1))
    }

    /// Compute zone maps for every column of `table`.
    pub fn compute(table: &Table) -> ZoneMaps {
        let rows = table.num_rows();
        let columns = table
            .columns()
            .iter()
            .map(|c| column_zone_map(c, rows))
            .collect();
        ZoneMaps {
            block_rows: ZONE_BLOCK_ROWS,
            rows,
            columns,
        }
    }

    /// The half-open block index range covering rows `[start, end)`.
    pub fn block_range(&self, start: usize, end: usize) -> std::ops::Range<usize> {
        if start >= end || self.block_rows == 0 {
            return 0..0;
        }
        let lo = start / self.block_rows;
        let hi = end.div_ceil(self.block_rows);
        lo..hi.min(self.num_blocks())
    }
}

fn column_zone_map(column: &Column, rows: usize) -> ColumnZoneMap {
    let num_blocks = rows.div_ceil(ZONE_BLOCK_ROWS.max(1));
    let mut blocks = Vec::with_capacity(num_blocks);
    for b in 0..num_blocks {
        let start = b * ZONE_BLOCK_ROWS;
        let end = (start + ZONE_BLOCK_ROWS).min(rows);
        blocks.push(block_summary(column, start, end));
    }
    ColumnZoneMap { blocks }
}

fn block_summary(column: &Column, start: usize, end: usize) -> BlockSummary {
    let rows = (end - start) as u32;
    let mut null_count = 0u32;
    // Null positions hold placeholder values (0 / 0.0 / code 0 / false),
    // so bounds must be folded over non-null rows only.
    let bounds = if let Some(data) = column.as_int64() {
        let mut acc: Option<(i64, i64)> = None;
        for (off, &v) in data[start..end].iter().enumerate() {
            if column.is_null(start + off) {
                null_count += 1;
                continue;
            }
            acc = Some(match acc {
                None => (v, v),
                Some((lo, hi)) => (lo.min(v), hi.max(v)),
            });
        }
        acc.map(|(min, max)| BlockBounds::Int { min, max })
    } else if let Some(data) = column.as_float64() {
        let mut acc: Option<(f64, f64)> = None;
        for (off, &v) in data[start..end].iter().enumerate() {
            if column.is_null(start + off) {
                null_count += 1;
                continue;
            }
            acc = Some(match acc {
                None => (v, v),
                Some((lo, hi)) => (
                    if v.total_cmp(&lo).is_lt() { v } else { lo },
                    if v.total_cmp(&hi).is_gt() { v } else { hi },
                ),
            });
        }
        acc.map(|(min, max)| BlockBounds::Float { min, max })
    } else if let Some((codes, dict)) = column.as_utf8() {
        let mut words = vec![0u64; dict.len().div_ceil(64)];
        let mut any = false;
        for (off, &code) in codes[start..end].iter().enumerate() {
            if column.is_null(start + off) {
                null_count += 1;
                continue;
            }
            let code = code as usize;
            words[code / 64] |= 1u64 << (code % 64);
            any = true;
        }
        any.then_some(BlockBounds::Dict { words })
    } else {
        for row in start..end {
            if column.is_null(row) {
                null_count += 1;
            }
        }
        None
    };
    BlockSummary {
        rows,
        null_count,
        bounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::{DataType, Value};

    fn test_table(rows: usize) -> Table {
        let schema = SchemaBuilder::new()
            .field("i", DataType::Int64)
            .field("f", DataType::Float64)
            .field("s", DataType::Utf8)
            .field("b", DataType::Bool)
            .build()
            .unwrap();
        let mut t = Table::empty("z", schema);
        for r in 0..rows {
            let s = ["x", "y", "z"][r % 3];
            t.push_row(&[
                if r % 7 == 0 { Value::Null } else { Value::Int64(r as i64) },
                Value::Float64(r as f64 / 2.0),
                if r % 5 == 0 { Value::Null } else { s.into() },
                Value::Bool(r % 2 == 0),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn blocks_cover_all_rows() {
        let t = test_table(ZONE_BLOCK_ROWS * 2 + 10);
        let zm = ZoneMaps::compute(&t);
        assert_eq!(zm.rows, t.num_rows());
        assert_eq!(zm.num_blocks(), 3);
        for col in &zm.columns {
            assert_eq!(col.blocks.len(), 3);
            let total: u32 = col.blocks.iter().map(|b| b.rows).sum();
            assert_eq!(total as usize, t.num_rows());
            assert_eq!(col.blocks[2].rows, 10);
        }
    }

    #[test]
    fn int_bounds_skip_nulls() {
        let t = test_table(100);
        let zm = ZoneMaps::compute(&t);
        let b = &zm.columns[0].blocks[0];
        // Row 0 is null (placeholder 0 must not leak into the min).
        match b.bounds {
            Some(BlockBounds::Int { min, max }) => {
                assert_eq!(min, 1);
                assert_eq!(max, 99);
            }
            ref other => panic!("unexpected bounds {other:?}"),
        }
        assert_eq!(b.null_count, 15); // rows 0,7,...,98
    }

    #[test]
    fn float_bounds_total_order() {
        let schema = SchemaBuilder::new()
            .field("f", DataType::Float64)
            .build()
            .unwrap();
        let mut t = Table::empty("f", schema);
        for v in [1.5, f64::NAN, -0.0, 0.0, -3.0] {
            t.push_row(&[Value::Float64(v)]).unwrap();
        }
        let zm = ZoneMaps::compute(&t);
        match zm.columns[0].blocks[0].bounds {
            Some(BlockBounds::Float { min, max }) => {
                assert_eq!(min, -3.0);
                assert!(max.is_nan(), "NaN is the total-order maximum");
            }
            ref other => panic!("unexpected bounds {other:?}"),
        }
    }

    #[test]
    fn dict_bitmap_tracks_presence() {
        let t = test_table(100);
        let zm = ZoneMaps::compute(&t);
        match &zm.columns[2].blocks[0].bounds {
            Some(BlockBounds::Dict { words }) => {
                // All three codes occur in the first block.
                assert_eq!(words[0] & 0b111, 0b111);
            }
            other => panic!("unexpected bounds {other:?}"),
        }
    }

    #[test]
    fn all_null_block_has_no_bounds() {
        let schema = SchemaBuilder::new()
            .field("i", DataType::Int64)
            .build()
            .unwrap();
        let mut t = Table::empty("n", schema);
        for _ in 0..5 {
            t.push_row(&[Value::Null]).unwrap();
        }
        let zm = ZoneMaps::compute(&t);
        let b = &zm.columns[0].blocks[0];
        assert!(b.all_null());
        assert!(b.bounds.is_none());
    }

    #[test]
    fn bool_column_has_no_bounds() {
        let t = test_table(10);
        let zm = ZoneMaps::compute(&t);
        assert!(zm.columns[3].blocks[0].bounds.is_none());
        assert!(!zm.columns[3].blocks[0].all_null());
    }

    #[test]
    fn block_range_clamps() {
        let t = test_table(ZONE_BLOCK_ROWS + 5);
        let zm = ZoneMaps::compute(&t);
        assert_eq!(zm.block_range(0, 10), 0..1);
        assert_eq!(zm.block_range(ZONE_BLOCK_ROWS, ZONE_BLOCK_ROWS + 5), 1..2);
        assert_eq!(zm.block_range(0, zm.rows), 0..2);
        assert_eq!(zm.block_range(5, 5), 0..0);
        // A sub-block morsel maps onto exactly its containing block.
        assert_eq!(zm.block_range(64, 128), 0..1);
    }

    #[test]
    fn empty_table() {
        let t = test_table(0);
        let zm = ZoneMaps::compute(&t);
        assert_eq!(zm.num_blocks(), 0);
        assert!(zm.columns.iter().all(|c| c.blocks.is_empty()));
        assert_eq!(zm.block_range(0, 0), 0..0);
    }
}
