//! CRC32C (Castagnoli) checksums for persisted files.
//!
//! Both binary codecs (`AQPT` tables, `AQPS` sample families) protect their
//! payloads with a CRC32C so that torn writes, truncation, and bit rot are
//! detected on load instead of silently misparsing. The Castagnoli
//! polynomial is the one used by iSCSI, ext4, and most storage systems; the
//! implementation is a plain byte-at-a-time table lookup (built at compile
//! time) — plenty fast for sample-family-sized files and dependency-free.

/// Reflected CRC32C (Castagnoli) polynomial.
const POLY: u32 = 0x82F6_3B78;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC32C of `bytes`.
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The standard CRC32C check value.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        // 32 zero bytes, another published vector.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
    }

    #[test]
    fn sensitive_to_any_single_bit_flip() {
        let data: Vec<u8> = (0..=255u8).collect();
        let base = crc32c(&data);
        for byte in [0usize, 17, 128, 255] {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32c(&flipped), base, "byte {byte} bit {bit}");
            }
        }
    }
}
