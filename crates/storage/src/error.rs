//! Error types for the storage engine.

use std::fmt;

/// Result alias used throughout the storage crate.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors raised by storage operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A column name was not found in a schema.
    ColumnNotFound {
        /// The requested column name.
        name: String,
    },
    /// A value's type did not match the column's declared type.
    TypeMismatch {
        /// Expected data type (the column's declared type).
        expected: crate::value::DataType,
        /// What was actually supplied.
        actual: String,
    },
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// The requested row.
        row: usize,
        /// The number of rows in the table/column.
        len: usize,
    },
    /// A row had the wrong number of values for the schema.
    ArityMismatch {
        /// Number of values supplied.
        supplied: usize,
        /// Number of fields in the schema.
        expected: usize,
    },
    /// Two schemas or column sets that must match did not.
    SchemaMismatch(String),
    /// A duplicate field name was supplied to a schema builder.
    DuplicateField(String),
    /// Persisted table data was malformed or truncated.
    Codec(String),
    /// Stored checksum disagrees with the checksum of the loaded payload:
    /// the file was corrupted after it was written (bit rot, torn write).
    ChecksumMismatch {
        /// Checksum recorded in the file header.
        expected: u32,
        /// Checksum computed over the payload actually read.
        actual: u32,
    },
    /// Persisted file has a format version this build cannot read.
    Version {
        /// Version found in the file header.
        found: u16,
        /// Version this build reads and writes.
        supported: u16,
    },
    /// Underlying file IO failed; the message includes the path.
    Io(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ColumnNotFound { name } => {
                write!(f, "column not found: {name:?}")
            }
            StorageError::TypeMismatch { expected, actual } => {
                write!(f, "type mismatch: expected {expected:?}, got {actual}")
            }
            StorageError::RowOutOfBounds { row, len } => {
                write!(f, "row {row} out of bounds (len {len})")
            }
            StorageError::ArityMismatch { supplied, expected } => {
                write!(f, "row arity mismatch: got {supplied} values, schema has {expected} fields")
            }
            StorageError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            StorageError::DuplicateField(name) => write!(f, "duplicate field name: {name:?}"),
            StorageError::Codec(msg) => write!(f, "codec error: {msg}"),
            StorageError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checksum mismatch: header says {expected:#010x}, payload hashes to \
                 {actual:#010x} — the file is corrupt"
            ),
            StorageError::Version { found, supported } => write!(
                f,
                "unsupported format version {found}: this build reads v{supported}; \
                 re-export the file with a matching build to migrate it"
            ),
            StorageError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    #[test]
    fn display_is_informative() {
        let e = StorageError::ColumnNotFound { name: "x".into() };
        assert!(e.to_string().contains("x"));
        let e = StorageError::TypeMismatch {
            expected: DataType::Int64,
            actual: "Utf8".into(),
        };
        assert!(e.to_string().contains("Int64"));
        let e = StorageError::RowOutOfBounds { row: 9, len: 3 };
        assert!(e.to_string().contains('9') && e.to_string().contains('3'));
        let e = StorageError::ArityMismatch { supplied: 2, expected: 5 };
        assert!(e.to_string().contains('2') && e.to_string().contains('5'));
    }
}
