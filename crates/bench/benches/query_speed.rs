//! Runtime query latency: exact execution vs. each AQP system, and the
//! per-grouping-column scaling behind Figure 9.

use aqp::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};

struct Setup {
    star: StarSchema,
    view: Table,
    sgs: SmallGroupSampler,
    uniform: UniformAqp,
}

fn setup() -> Setup {
    let star = gen_tpch(&TpchConfig {
        scale_factor: 0.5,
        zipf_z: 1.5,
        seed: 5,
    })
    .unwrap();
    let view = star.denormalize("v").unwrap();
    let sgs = SmallGroupSampler::build(&view, SmallGroupConfig::with_rates(0.01, 0.5)).unwrap();
    let uniform = UniformAqp::build(&view, 0.02, 1).unwrap();
    Setup {
        star,
        view,
        sgs,
        uniform,
    }
}

fn queries() -> Vec<(&'static str, Query)> {
    vec![
        (
            "g1",
            Query::builder()
                .count()
                .group_by("lineitem.shipmode")
                .build()
                .unwrap(),
        ),
        (
            "g2",
            Query::builder()
                .count()
                .group_by("lineitem.shipmode")
                .group_by("part.brand")
                .build()
                .unwrap(),
        ),
        (
            "g4",
            Query::builder()
                .count()
                .group_by("lineitem.shipmode")
                .group_by("part.brand")
                .group_by("supplier.nation")
                .group_by("orders.priority")
                .build()
                .unwrap(),
        ),
    ]
}

fn bench_query_speed(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("query");

    for (label, q) in queries() {
        group.bench_function(format!("exact_star/{label}"), |b| {
            b.iter(|| {
                execute(
                    &DataSource::Star(&s.star),
                    std::hint::black_box(&q),
                    &ExecOptions::default(),
                )
                .unwrap()
            })
        });
        group.bench_function(format!("exact_wide/{label}"), |b| {
            b.iter(|| {
                execute(
                    &DataSource::Wide(&s.view),
                    std::hint::black_box(&q),
                    &ExecOptions::default(),
                )
                .unwrap()
            })
        });
        group.bench_function(format!("smallgroup/{label}"), |b| {
            b.iter(|| s.sgs.answer(std::hint::black_box(&q), 0.95).unwrap())
        });
        group.bench_function(format!("uniform/{label}"), |b| {
            b.iter(|| s.uniform.answer(std::hint::black_box(&q), 0.95).unwrap())
        });
    }

    // Parallel exact scan ablation.
    let q = queries().pop().unwrap().1;
    for threads in [1usize, 4] {
        group.bench_function(format!("exact_wide_parallel/{threads}"), |b| {
            let opts = ExecOptions {
                parallelism: threads,
                ..ExecOptions::default()
            };
            b.iter(|| execute(&DataSource::Wide(&s.view), std::hint::black_box(&q), &opts).unwrap())
        });
    }

    group.finish();
}

criterion_group!(benches, bench_query_speed);
criterion_main!(benches);
