//! Executor micro-benchmarks: predicate fast paths, group-key extraction,
//! bitmask filtering and join-synopsis denormalisation.

use aqp::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_executor(c: &mut Criterion) {
    let star = gen_tpch(&TpchConfig {
        scale_factor: 0.2,
        zipf_z: 1.5,
        seed: 3,
    })
    .unwrap();
    let view = star.denormalize("v").unwrap();
    let mut group = c.benchmark_group("executor");

    // IN-list over a dictionary column (resolved to codes at compile time).
    let q = Query::builder()
        .count()
        .filter(Expr::in_set(
            "lineitem.shipmode",
            vec!["SHIP#000".into(), "SHIP#003".into()],
        ))
        .build()
        .unwrap();
    group.bench_function("dict_in_set_filter", |b| {
        b.iter(|| execute(&DataSource::Wide(&view), &q, &ExecOptions::default()).unwrap())
    });

    // Numeric range comparison fast path.
    let q = Query::builder()
        .count()
        .filter(Expr::cmp("lineitem.extendedprice", CmpOp::Ge, 5000.0f64))
        .build()
        .unwrap();
    group.bench_function("float_cmp_filter", |b| {
        b.iter(|| execute(&DataSource::Wide(&view), &q, &ExecOptions::default()).unwrap())
    });

    // Group-key extraction: 1 vs 4 columns.
    let q1 = Query::builder().count().group_by("part.brand").build().unwrap();
    let q4 = Query::builder()
        .count()
        .group_by("part.brand")
        .group_by("lineitem.shipmode")
        .group_by("supplier.nation")
        .group_by("orders.priority")
        .build()
        .unwrap();
    group.bench_function("group_by_1col", |b| {
        b.iter(|| execute(&DataSource::Wide(&view), &q1, &ExecOptions::default()).unwrap())
    });
    group.bench_function("group_by_4col", |b| {
        b.iter(|| execute(&DataSource::Wide(&view), &q4, &ExecOptions::default()).unwrap())
    });

    // Star execution (through the join maps) vs the wide view.
    group.bench_function("group_by_4col_star", |b| {
        b.iter(|| execute(&DataSource::Star(&star), &q4, &ExecOptions::default()).unwrap())
    });

    // Bitmask-filtered scan over a sample table.
    let sgs = SmallGroupSampler::build(&view, SmallGroupConfig::with_rates(0.05, 0.5)).unwrap();
    let q = Query::builder()
        .count()
        .group_by("part.brand")
        .build()
        .unwrap();
    group.bench_function("rewritten_plan_with_bitmask", |b| {
        b.iter(|| sgs.answer(&q, 0.95).unwrap())
    });

    // Join-synopsis materialisation.
    group.bench_function("denormalize_1pct", |b| {
        let rows: Vec<usize> = (0..star.fact().num_rows()).step_by(100).collect();
        b.iter(|| star.denormalize_rows("syn", &rows).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_executor);
criterion_main!(benches);
