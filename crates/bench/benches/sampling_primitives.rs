//! Micro-benchmarks of the sampling substrate: reservoir maintenance,
//! without-replacement draws, Zipf sampling and frequency counting.

use aqp::sampling::{
    sample_without_replacement, BernoulliSampler, ColumnFrequency, ReservoirSampler,
    TruncatedZipf,
};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling");

    group.bench_function("reservoir_100k_into_1k", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut r = ReservoirSampler::new(1_000);
            for i in 0..100_000u32 {
                r.observe(i, &mut rng);
            }
            std::hint::black_box(r.items().len())
        })
    });

    group.bench_function("wor_100k_choose_1k", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            std::hint::black_box(sample_without_replacement(100_000, 1_000, &mut rng).len())
        })
    });

    group.bench_function("bernoulli_100k_at_1pct", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            let s = BernoulliSampler::new(0.01);
            std::hint::black_box(s.sample_indices(100_000, &mut rng).len())
        })
    });

    group.bench_function("zipf_sample_100k", |b| {
        let d = TruncatedZipf::new(1000, 1.5);
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(4);
            let mut acc = 0usize;
            for _ in 0..100_000 {
                acc += d.sample(&mut rng);
            }
            std::hint::black_box(acc)
        })
    });

    group.bench_function("frequency_count_100k", |b| {
        let d = TruncatedZipf::new(500, 1.2);
        let mut rng = StdRng::seed_from_u64(5);
        let values: Vec<u64> = (0..100_000).map(|_| d.sample(&mut rng) as u64).collect();
        b.iter(|| {
            let mut f: ColumnFrequency<u64> = ColumnFrequency::new(5000);
            for v in &values {
                f.observe(v);
            }
            std::hint::black_box(f.distinct())
        })
    });

    group.bench_function("common_values_l_c", |b| {
        let d = TruncatedZipf::new(500, 1.2);
        let mut rng = StdRng::seed_from_u64(6);
        let mut f: ColumnFrequency<u64> = ColumnFrequency::new(5000);
        for _ in 0..100_000 {
            f.observe(&(d.sample(&mut rng) as u64));
        }
        b.iter(|| std::hint::black_box(f.common_values(0.005).map(|c| c.num_common())))
    });

    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
