//! Cost of evaluating the Section 4.4 analytical model (it enumerates
//! c^g groups per evaluation — the reason the paper computed it "using a
//! computer program" rather than in closed form).

use aqp::analytical::{
    expected_sqrelerr_smallgroup, expected_sqrelerr_uniform, sweep_allocation_ratio, ModelConfig,
};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("analytical");

    let cfg2 = ModelConfig {
        distinct_values: 50,
        grouping_columns: 2,
        ..Default::default()
    };
    let cfg3 = ModelConfig {
        distinct_values: 50,
        grouping_columns: 3,
        selectivity: 0.3,
        ..Default::default()
    };

    group.bench_function("uniform_g2_c50", |b| {
        b.iter(|| std::hint::black_box(expected_sqrelerr_uniform(&cfg2)))
    });
    group.bench_function("smallgroup_g3_c50", |b| {
        b.iter(|| std::hint::black_box(expected_sqrelerr_smallgroup(&cfg3, 0.5)))
    });
    group.bench_function("fig3a_full_sweep", |b| {
        let gammas: Vec<f64> = (0..=20).map(|i| i as f64 * 0.1).collect();
        b.iter(|| std::hint::black_box(sweep_allocation_ratio(&cfg2, &gammas)))
    });

    group.finish();
}

criterion_group!(benches, bench_model);
criterion_main!(benches);
