//! Pre-processing cost of each AQP system (paper Section 5.4.2).
//!
//! The paper's claim: uniform sampling and outlier indexing build in
//! minutes, small group sampling and basic congress are slower but "not
//! exorbitant" — and small group sampling scales *linearly* in the number
//! of columns while full congress is exponential.

use aqp::prelude::*;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn view() -> Table {
    gen_tpch(&TpchConfig {
        scale_factor: 0.2,
        zipf_z: 1.5,
        seed: 5,
    })
    .unwrap()
    .denormalize("v")
    .unwrap()
}

fn bench_preprocess(c: &mut Criterion) {
    let view = view();
    let mut group = c.benchmark_group("preprocess");
    group.sample_size(10);

    group.bench_function("smallgroup", |b| {
        b.iter_batched(
            || (),
            |()| SmallGroupSampler::build(&view, SmallGroupConfig::with_rates(0.01, 0.5)).unwrap(),
            BatchSize::LargeInput,
        )
    });

    group.bench_function("uniform", |b| {
        b.iter_batched(
            || (),
            |()| UniformAqp::build(&view, 0.02, 1).unwrap(),
            BatchSize::LargeInput,
        )
    });

    let cols: Vec<String> = ["lineitem.shipmode", "lineitem.returnflag", "part.brand"]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    let budget = view.num_rows() / 50;
    group.bench_function("basic_congress", |b| {
        b.iter_batched(
            || (),
            |()| BasicCongress::build(&view, &cols, budget, 1).unwrap(),
            BatchSize::LargeInput,
        )
    });

    group.bench_function("outlier_index", |b| {
        b.iter_batched(
            || (),
            |()| OutlierIndex::build(&view, "lineitem.extendedprice", budget / 2, 0.01, 1).unwrap(),
            BatchSize::LargeInput,
        )
    });

    group.bench_function("multilevel", |b| {
        b.iter_batched(
            || (),
            |()| {
                MultiLevelSampler::build(
                    &view,
                    MultiLevelConfig {
                        base_rate: 0.01,
                        levels: vec![(0.005, 1.0), (0.02, 0.1)],
                        ..Default::default()
                    },
                )
                .unwrap()
            },
            BatchSize::LargeInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_preprocess);
criterion_main!(benches);
