//! One driver per paper figure / in-text table.
//!
//! Every function builds the required database(s) and systems, runs the
//! workload, and returns [`FigureTable`]s whose rows mirror the series the
//! paper plots. Binaries in `src/bin/` print them; EXPERIMENTS.md records
//! paper-vs-measured values and the expected shapes.

use crate::datasets::ExpConfig;
use crate::report::FigureTable;
use crate::compare_on_workload;
use aqp::analytical::{sweep_allocation_ratio, sweep_skew, ModelConfig};
use aqp::prelude::*;

type AnyError = Box<dyn std::error::Error>;

/// Figure 3(a): analytical SqRelErr vs. sampling allocation ratio
/// (g = 2, σ = 0.1, c = 50, z = 1.8).
pub fn fig3a() -> FigureTable {
    let cfg = ModelConfig {
        distinct_values: 50,
        skew: 1.8,
        grouping_columns: 2,
        selectivity: 0.1,
        ..Default::default()
    };
    let gammas: Vec<f64> = (0..=20).map(|i| i as f64 * 0.1).collect();
    let mut table = FigureTable::new(
        "Figure 3(a): analytical SqRelErr vs allocation ratio (z=1.8, g=2, sigma=0.1, c=50)",
        &["gamma", "SmGroup"],
    );
    for (gamma, esg) in sweep_allocation_ratio(&cfg, &gammas) {
        table.push(format!("{gamma:.1}"), vec![esg]);
    }
    table
}

/// Figure 3(b): analytical SqRelErr vs. skew z
/// (g = 3, σ = 0.3, c = 50, γ = 0.5).
pub fn fig3b() -> FigureTable {
    let cfg = ModelConfig {
        distinct_values: 50,
        skew: 1.8,
        grouping_columns: 3,
        selectivity: 0.3,
        ..Default::default()
    };
    let skews: Vec<f64> = (0..=12).map(|i| 1.0 + i as f64 * 0.125).collect();
    let mut table = FigureTable::new(
        "Figure 3(b): analytical SqRelErr vs skew (g=3, sigma=0.3, c=50, gamma=0.5)",
        &["z", "SmGroup", "Uniform"],
    );
    for (z, esg, eu) in sweep_skew(&cfg, 0.5, &skews) {
        table.push(format!("{z:.3}"), vec![esg, eu]);
    }
    table
}

/// Shared body of Figures 4, 8: sweep the number of grouping columns on a
/// prebuilt view, evaluating the given systems per sweep point with a
/// freshly matched uniform baseline.
fn grouping_sweep(
    cfg: &ExpConfig,
    view: &Table,
    profile: &DatasetProfile,
    sgs: &SmallGroupSampler,
    congress: Option<&BasicCongress>,
    titles: (&str, &str),
) -> Result<(FigureTable, FigureTable), AnyError> {
    let mut rel_cols = vec!["g", "SmGroup", "Uniform"];
    let mut pct_cols = vec!["g", "SmGroup", "Uniform"];
    if congress.is_some() {
        rel_cols.insert(2, "BasicCongress");
        pct_cols.insert(2, "BasicCongress");
    }
    let mut rel = FigureTable::new(titles.0, &rel_cols);
    let mut pct = FigureTable::new(titles.1, &pct_cols);

    for g in 1..=4usize {
        let queries = generate_queries(
            profile,
            &QueryGenConfig {
                grouping_columns: g,
                num_predicates: 1,
                aggregate: WorkloadAggregate::Count,
                seed: cfg.seed + g as u64,
                ..Default::default()
            },
            cfg.queries_per_config,
        );
        let uniform = UniformAqp::build(
            view,
            UniformAqp::matched_rate(cfg.base_rate, cfg.gamma, g),
            cfg.seed,
        )?;
        let mut systems: Vec<&dyn AqpSystem> = vec![sgs, &uniform];
        if let Some(c) = congress {
            systems.insert(1, c);
        }
        let scores = compare_on_workload(&systems, &DataSource::Wide(view), &queries)?;
        rel.push(g.to_string(), scores.iter().map(|s| s.rel_err).collect());
        pct.push(g.to_string(), scores.iter().map(|s| s.pct_groups).collect());
    }
    Ok((rel, pct))
}

/// Figure 4(a)/(b): RelErr and PctGroups vs. number of grouping columns,
/// small group sampling vs. space-matched uniform, on TPCH z=2.0.
pub fn fig4(cfg: &ExpConfig) -> Result<(FigureTable, FigureTable), AnyError> {
    let star = cfg.tpch(2.0);
    let view = star.denormalize("tpch_view")?;
    let profile = cfg.tpch_profile(&view);
    let sgs = SmallGroupSampler::build(&view, cfg.sgs_config())?;
    grouping_sweep(
        cfg,
        &view,
        &profile,
        &sgs,
        None,
        (
            "Figure 4(a): RelErr vs grouping columns (TPCH z=2.0)",
            "Figure 4(b): PctGroups vs grouping columns (TPCH z=2.0)",
        ),
    )
}

/// Figure 5: RelErr and PctGroups vs. per-group selectivity (log buckets)
/// on the SALES database, small group sampling vs. matched uniform.
pub fn fig5(cfg: &ExpConfig) -> Result<FigureTable, AnyError> {
    use aqp::workload::harness::{approx_map, exact_answer};
    use aqp::workload::metrics::metric_report;

    // SALES micro-scale calibration: its group spaces are wider relative
    // to N than TPC-H's, so the SALES experiments run at 1.5x the base
    // rate to stay in the paper's rows-per-group regime (see crate docs).
    let cfg = &ExpConfig {
        base_rate: (cfg.base_rate * 1.5).min(1.0),
        ..*cfg
    };
    let star = cfg.sales();
    let view = star.denormalize("sales_view")?;
    let profile = cfg.sales_profile(&view);
    let sgs = SmallGroupSampler::build(&view, cfg.sgs_config())?;

    // Mix grouping arities and predicate widths so queries span a wide
    // range of per-group selectivities, then bucket by the exact answer's
    // mean group size (the paper's x-axis).
    let mut evals: Vec<(f64, f64, f64, f64, f64)> = Vec::new(); // (sel, sgs_rel, uni_rel, sgs_pct, uni_pct)
    for g in 1..=3usize {
        let queries = generate_queries(
            &profile,
            &QueryGenConfig {
                grouping_columns: g,
                num_predicates: if g == 1 { 1 } else { 2 },
                aggregate: WorkloadAggregate::Count,
                seed: cfg.seed + 10 + g as u64,
                ..Default::default()
            },
            cfg.queries_per_config,
        );
        let uniform = UniformAqp::build(
            &view,
            UniformAqp::matched_rate(cfg.base_rate, cfg.gamma, g),
            cfg.seed,
        )?;
        for q in &queries {
            let exact = exact_answer(&DataSource::Wide(&view), q)?;
            if exact.num_groups() == 0 {
                continue;
            }
            let sel = exact.per_group_selectivity();
            let a = metric_report(&exact.per_agg[0], &approx_map(&sgs.answer(q, 0.95)?, 0));
            let b = metric_report(&exact.per_agg[0], &approx_map(&uniform.answer(q, 0.95)?, 0));
            evals.push((sel, a.rel_err, b.rel_err, a.pct_groups, b.pct_groups));
        }
    }

    // The paper's log-scale buckets: 0.02% to 1.28%, doubling.
    let edges = [0.0, 0.0002, 0.0004, 0.0008, 0.0016, 0.0032, 0.0064, 0.0128, 1.0];
    let labels = [
        ".00-.02%", ".02-.04%", ".04-.08%", ".08-.16%", ".16-.32%", ".32-.64%", ".64-1.28%",
        ">1.28%",
    ];
    let mut table = FigureTable::new(
        "Figure 5: error vs per-group selectivity (SALES)",
        &["selectivity", "SmGroup RelErr", "Uniform RelErr", "SmGroup Pct", "Uniform Pct", "queries"],
    );
    for b in 0..labels.len() {
        let bucket: Vec<_> = evals
            .iter()
            .filter(|(sel, ..)| *sel > edges[b] && *sel <= edges[b + 1])
            .collect();
        if bucket.is_empty() {
            continue;
        }
        let n = bucket.len() as f64;
        table.push(
            labels[b],
            vec![
                bucket.iter().map(|e| e.1).sum::<f64>() / n,
                bucket.iter().map(|e| e.2).sum::<f64>() / n,
                bucket.iter().map(|e| e.3).sum::<f64>() / n,
                bucket.iter().map(|e| e.4).sum::<f64>() / n,
                n,
            ],
        );
    }
    Ok(table)
}

/// Figure 6: RelErr (and PctGroups) vs. Zipf skew on the TPCH1Gyz series.
pub fn fig6(cfg: &ExpConfig) -> Result<FigureTable, AnyError> {
    let mut table = FigureTable::new(
        "Figure 6: error vs skew (TPCH1Gyz, 2 grouping columns)",
        &["z", "SmGroup RelErr", "Uniform RelErr", "SmGroup Pct", "Uniform Pct"],
    );
    let g = 2usize;
    for &z in &[1.0, 1.5, 2.0, 2.5] {
        let star = cfg.tpch(z);
        let view = star.denormalize("v")?;
        let profile = cfg.tpch_profile(&view);
        let sgs = SmallGroupSampler::build(&view, cfg.sgs_config())?;
        let uniform = UniformAqp::build(
            &view,
            UniformAqp::matched_rate(cfg.base_rate, cfg.gamma, g),
            cfg.seed,
        )?;
        let queries = generate_queries(
            &profile,
            &QueryGenConfig {
                grouping_columns: g,
                num_predicates: 1,
                aggregate: WorkloadAggregate::Count,
                seed: cfg.seed + 20,
                ..Default::default()
            },
            cfg.queries_per_config,
        );
        let scores =
            compare_on_workload(&[&sgs, &uniform], &DataSource::Wide(&view), &queries)?;
        table.push(
            format!("{z:.1}"),
            vec![
                scores[0].rel_err,
                scores[1].rel_err,
                scores[0].pct_groups,
                scores[1].pct_groups,
            ],
        );
    }
    Ok(table)
}

/// Figure 7: error vs. base sampling rate (log-scale sweep) on TPCH z=2.0.
pub fn fig7(cfg: &ExpConfig) -> Result<FigureTable, AnyError> {
    let star = cfg.tpch(2.0);
    let view = star.denormalize("v")?;
    let profile = cfg.tpch_profile(&view);
    let g = 2usize;
    let queries = generate_queries(
        &profile,
        &QueryGenConfig {
            grouping_columns: g,
            num_predicates: 1,
            aggregate: WorkloadAggregate::Count,
            seed: cfg.seed + 30,
            ..Default::default()
        },
        cfg.queries_per_config,
    );
    let mut table = FigureTable::new(
        "Figure 7: error vs base sampling rate (TPCH z=2.0)",
        &["rate", "SmGroup RelErr", "Uniform RelErr", "SmGroup Pct", "Uniform Pct"],
    );
    // The paper sweeps 0.25%–4%; at micro-scale the equivalent regime is
    // one decade higher (see the crate docs on rate calibration). RelErr is
    // heavy-tailed under a single small sample draw (one lucky sample row
    // in a tiny group overestimates by the full inverse rate), so each
    // sweep point averages over several sampler seeds — the paper's huge
    // absolute sample sizes smooth this implicitly.
    const SAMPLE_SEEDS: u64 = 3;
    for &rate in &[0.01, 0.02, 0.04, 0.08, 0.16] {
        let mut acc = [0.0f64; 4];
        for s in 0..SAMPLE_SEEDS {
            let sgs = SmallGroupSampler::build(
                &view,
                SmallGroupConfig {
                    seed: cfg.seed + s,
                    ..SmallGroupConfig::with_rates(rate, cfg.gamma)
                },
            )?;
            let uniform = UniformAqp::build(
                &view,
                UniformAqp::matched_rate(rate, cfg.gamma, g),
                cfg.seed + s,
            )?;
            let scores =
                compare_on_workload(&[&sgs, &uniform], &DataSource::Wide(&view), &queries)?;
            acc[0] += scores[0].rel_err;
            acc[1] += scores[1].rel_err;
            acc[2] += scores[0].pct_groups;
            acc[3] += scores[1].pct_groups;
        }
        table.push(
            format!("{:.2}%", rate * 100.0),
            acc.iter().map(|v| v / SAMPLE_SEEDS as f64).collect(),
        );
    }
    Ok(table)
}

/// Figure 8(a)/(b): RelErr and PctGroups vs. grouping columns on SALES —
/// small group sampling vs. basic congress vs. uniform.
pub fn fig8(cfg: &ExpConfig) -> Result<(FigureTable, FigureTable), AnyError> {
    // Same SALES rate calibration as fig5.
    let cfg = &ExpConfig {
        base_rate: (cfg.base_rate * 1.5).min(1.0),
        ..*cfg
    };
    let star = cfg.sales();
    let view = star.denormalize("sales_view")?;
    let profile = cfg.sales_profile(&view);
    let sgs = SmallGroupSampler::build(&view, cfg.sgs_config())?;

    // Basic congress stratifies by the joint key over every candidate
    // grouping column — the construction whose stratum count explodes
    // (the paper observed ~166k strata on SALES, degenerating to uniform).
    let congress_cols: Vec<String> = profile
        .column_names()
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    // Budget matched to the middle of the sweep (g = 2), as a static
    // congress sample cannot adapt per query.
    let budget =
        (view.num_rows() as f64 * UniformAqp::matched_rate(cfg.base_rate, cfg.gamma, 2)) as usize;
    let congress = BasicCongress::build(&view, &congress_cols, budget, cfg.seed)?;

    grouping_sweep(
        cfg,
        &view,
        &profile,
        &sgs,
        Some(&congress),
        (
            "Figure 8(a): RelErr vs grouping columns (SALES)",
            "Figure 8(b): PctGroups vs grouping columns (SALES)",
        ),
    )
}

/// Figure 9: wall-clock speedup of small group sampling vs. number of
/// grouping columns, on the large TPCH z=1.5 database. Exact execution
/// runs against the star schema (joins included), approximate execution
/// against the pre-joined sample tables.
pub fn fig9(cfg: &ExpConfig) -> Result<FigureTable, AnyError> {
    // "TPCH5G1.5z": 5x the configured scale.
    let big = ExpConfig {
        tpch_scale: cfg.tpch_scale * 5.0,
        ..*cfg
    };
    let star = big.tpch(1.5);
    let view = star.denormalize("v")?;
    let profile = big.tpch_profile(&view);
    let sgs = SmallGroupSampler::build(&view, big.sgs_config())?;

    let mut table = FigureTable::new(
        "Figure 9: speedup of small group sampling vs grouping columns (TPCH5G1.5z)",
        &["g", "speedup", "approx ms", "exact ms"],
    );
    for g in 1..=4usize {
        let queries = generate_queries(
            &profile,
            &QueryGenConfig {
                grouping_columns: g,
                num_predicates: 1,
                aggregate: WorkloadAggregate::Count,
                seed: big.seed + 40 + g as u64,
                ..Default::default()
            },
            big.queries_per_config.min(10),
        );
        let scores = compare_on_workload(&[&sgs], &DataSource::Star(&star), &queries)?;
        table.push(
            g.to_string(),
            vec![scores[0].speedup(), scores[0].approx_ms, scores[0].exact_ms],
        );
    }
    Ok(table)
}

/// Section 5.3.3 (in-text table): SUM queries on SALES — small group
/// sampling enhanced with outlier indexing vs. outlier indexing alone vs.
/// uniform. The paper reports RelErr 0.79 vs 1.08 and missed groups
/// 37% vs 55%.
pub fn exp_sum(cfg: &ExpConfig) -> Result<FigureTable, AnyError> {
    let star = cfg.sales();
    let view = star.denormalize("sales_view")?;
    let profile = cfg.sales_profile(&view);
    let measure = "sales.revenue";

    let sgs_outlier = SmallGroupSampler::build(
        &view,
        SmallGroupConfig {
            seed: cfg.seed,
            overall: OverallKind::OutlierIndexed {
                column: measure.into(),
            },
            ..SmallGroupConfig::with_rates(cfg.base_rate, cfg.gamma)
        },
    )?;
    // Fairness at g=1: budget r(1+γ)·N, split half outliers / half sample.
    let budget =
        (view.num_rows() as f64 * UniformAqp::matched_rate(cfg.base_rate, cfg.gamma, 1)) as usize;
    let rest_rate = (budget as f64 / 2.0) / view.num_rows() as f64;
    let outlier = OutlierIndex::build(&view, measure, budget / 2, rest_rate, cfg.seed)?;
    let uniform = UniformAqp::build(
        &view,
        UniformAqp::matched_rate(cfg.base_rate, cfg.gamma, 1),
        cfg.seed,
    )?;

    let queries = generate_queries(
        &profile,
        &QueryGenConfig {
            grouping_columns: 1,
            num_predicates: 1,
            aggregate: WorkloadAggregate::Sum,
            seed: cfg.seed + 50,
            ..Default::default()
        },
        cfg.queries_per_config,
    );
    let scores = compare_on_workload(
        &[&sgs_outlier, &outlier, &uniform],
        &DataSource::Wide(&view),
        &queries,
    )?;

    let mut table = FigureTable::new(
        "Section 5.3.3: SUM queries on SALES (paper: RelErr 0.79 vs 1.08, missed 37% vs 55%)",
        &["system", "RelErr", "PctGroups"],
    );
    for (name, s) in [
        ("SmGroup+Outlier", scores[0]),
        ("OutlierIndex", scores[1]),
        ("Uniform", scores[2]),
    ] {
        table.push(name, vec![s.rel_err, s.pct_groups]);
    }
    Ok(table)
}

/// Sections 5.4.1 / 5.4.2: query-processing speedups for every system and
/// preprocessing time / sample space overheads on both databases.
pub fn exp_perf(cfg: &ExpConfig) -> Result<(FigureTable, FigureTable), AnyError> {
    use std::time::Instant;

    // --- 5.4.1: query speedups on the large TPC-H database ---
    let big = ExpConfig {
        tpch_scale: cfg.tpch_scale * 5.0,
        ..*cfg
    };
    let star = big.tpch(1.5);
    let view = star.denormalize("v")?;
    let profile = big.tpch_profile(&view);

    let t_sgs = Instant::now();
    let sgs = SmallGroupSampler::build(&view, big.sgs_config())?;
    let t_sgs = t_sgs.elapsed();

    let g = 2usize;
    let rate = UniformAqp::matched_rate(big.base_rate, big.gamma, g);
    let t_uni = Instant::now();
    let uniform = UniformAqp::build(&view, rate, big.seed)?;
    let t_uni = t_uni.elapsed();

    let congress_cols: Vec<String> = profile
        .column_names()
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    let budget = (view.num_rows() as f64 * rate) as usize;
    let t_con = Instant::now();
    let congress = BasicCongress::build(&view, &congress_cols, budget, big.seed)?;
    let t_con = t_con.elapsed();

    let t_out = Instant::now();
    let outlier = OutlierIndex::build(
        &view,
        "lineitem.extendedprice",
        budget / 2,
        rate / 2.0,
        big.seed,
    )?;
    let t_out = t_out.elapsed();

    let queries = generate_queries(
        &profile,
        &QueryGenConfig {
            grouping_columns: g,
            num_predicates: 1,
            aggregate: WorkloadAggregate::Count,
            seed: big.seed + 60,
            ..Default::default()
        },
        big.queries_per_config.min(10),
    );
    let scores = compare_on_workload(
        &[&sgs, &uniform, &congress, &outlier],
        &DataSource::Star(&star),
        &queries,
    )?;

    let mut speedups = FigureTable::new(
        "Section 5.4.1: query speedups (TPCH5G1.5z; paper: SmGroup 9.5x, Uniform 11.5x)",
        &["system", "speedup", "approx ms", "exact ms"],
    );
    let names = ["SmGroup", "Uniform", "BasicCongress", "OutlierIndex"];
    for (name, s) in names.iter().zip(&scores) {
        speedups.push(*name, vec![s.speedup(), s.approx_ms, s.exact_ms]);
    }

    // --- 5.4.2: preprocessing time and space ---
    // The paper quotes space overheads at its 1% base rate (≈6% of the DB
    // for TPC-H, dropping to ≈1.8% at a 0.25% rate), so the space table is
    // measured at those rates rather than the accuracy-calibrated one.
    // τ is scaled to the micro row counts (at 300k rows nothing reaches
    // τ = 5000, which would wrongly grant key-like columns small group
    // tables that a full-scale run would drop).
    let micro_tau = 500;
    let view_bytes = view.byte_size() as f64;
    let mut prep = FigureTable::new(
        "Section 5.4.2: preprocessing time and sample space (TPCH5G1.5z; paper: SmGroup ~6% of DB at 1% rate, ~1.8% at 0.25%)",
        &["system", "build seconds", "space % of DB"],
    );
    let builds: [(&str, f64, usize); 4] = [
        ("SmGroup(cal.)", t_sgs.as_secs_f64(), sgs.sample_bytes()),
        ("Uniform", t_uni.as_secs_f64(), uniform.sample_bytes()),
        ("BasicCongress", t_con.as_secs_f64(), congress.sample_bytes()),
        ("OutlierIndex", t_out.as_secs_f64(), outlier.sample_bytes()),
    ];
    for (name, secs, bytes) in builds {
        prep.push(name, vec![secs, 100.0 * bytes as f64 / view_bytes]);
    }
    for rate in [0.01, 0.0025] {
        let t0 = Instant::now();
        let s = SmallGroupSampler::build(
            &view,
            SmallGroupConfig {
                seed: big.seed,
                tau: micro_tau,
                ..SmallGroupConfig::with_rates(rate, big.gamma)
            },
        )?;
        prep.push(
            format!("SmGroup@{:.2}%", rate * 100.0),
            vec![
                t0.elapsed().as_secs_f64(),
                100.0 * s.sample_bytes() as f64 / view_bytes,
            ],
        );
    }
    Ok((speedups, prep))
}

/// Variation ablation (DESIGN.md): multi-level hierarchies and column-pair
/// small group tables vs. plain small group sampling, on SALES.
pub fn exp_variations(cfg: &ExpConfig) -> Result<FigureTable, AnyError> {
    let star = cfg.sales();
    let view = star.denormalize("sales_view")?;
    let profile = cfg.sales_profile(&view);

    let sgs = SmallGroupSampler::build(&view, cfg.sgs_config())?;
    let multilevel = MultiLevelSampler::build(
        &view,
        MultiLevelConfig {
            base_rate: cfg.base_rate,
            levels: vec![
                (cfg.base_rate * cfg.gamma / 2.0, 1.0),
                (cfg.base_rate * cfg.gamma * 2.0, 0.25),
            ],
            seed: cfg.seed,
            ..Default::default()
        },
    )?;
    // Pair tables over plausible co-grouped columns.
    let pairs = SmallGroupSampler::build(
        &view,
        SmallGroupConfig {
            seed: cfg.seed,
            column_pairs: vec![
                ("product.category".into(), "store.region".into()),
                ("customer.segment".into(), "channel.name".into()),
            ],
            ..SmallGroupConfig::with_rates(cfg.base_rate, cfg.gamma)
        },
    )?;

    let queries = generate_queries(
        &profile,
        &QueryGenConfig {
            grouping_columns: 2,
            num_predicates: 1,
            aggregate: WorkloadAggregate::Count,
            seed: cfg.seed + 70,
            ..Default::default()
        },
        cfg.queries_per_config,
    );
    let scores = compare_on_workload(
        &[&sgs, &multilevel, &pairs],
        &DataSource::Wide(&view),
        &queries,
    )?;

    let mut table = FigureTable::new(
        "Variations (Section 4.2.3): plain vs multi-level vs column-pair small group sampling (SALES)",
        &["system", "RelErr", "PctGroups", "approx ms"],
    );
    for (name, s) in [
        ("SmGroup", scores[0]),
        ("MultiLevel", scores[1]),
        ("SmGroup+Pairs", scores[2]),
    ] {
        table.push(name, vec![s.rel_err, s.pct_groups, s.approx_ms]);
    }
    Ok(table)
}

/// Ablation: empirical counterpart of Figure 3(a) — sweep the allocation
/// ratio γ at a fixed total runtime budget on the skewed TPC-H database,
/// validating the paper's γ = 0.5 recommendation against measured RelErr
/// rather than the analytical model.
pub fn exp_gamma(cfg: &ExpConfig) -> Result<FigureTable, AnyError> {
    let star = cfg.tpch(2.0);
    let view = star.denormalize("v")?;
    let profile = cfg.tpch_profile(&view);
    let g = 2usize;
    let queries = generate_queries(
        &profile,
        &QueryGenConfig {
            grouping_columns: g,
            num_predicates: 1,
            aggregate: WorkloadAggregate::Count,
            seed: cfg.seed + 80,
            ..Default::default()
        },
        cfg.queries_per_config,
    );

    // Fixed total budget: what the matched uniform baseline uses at the
    // experiment's default γ. Every sweep point splits the same budget:
    // r = budget / (1 + γ·g), t = γ·r.
    let budget_fraction = UniformAqp::matched_rate(cfg.base_rate, cfg.gamma, g);
    let mut table = FigureTable::new(
        "Ablation (empirical Fig. 3a): RelErr vs allocation ratio at fixed budget (TPCH z=2.0)",
        &["gamma", "RelErr", "PctGroups", "base rate %"],
    );
    for &gamma in &[0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0] {
        let r = budget_fraction / (1.0 + gamma * g as f64);
        let sgs = SmallGroupSampler::build(
            &view,
            SmallGroupConfig {
                seed: cfg.seed,
                ..SmallGroupConfig::with_rates(r, gamma)
            },
        )?;
        let scores = compare_on_workload(&[&sgs], &DataSource::Wide(&view), &queries)?;
        table.push(
            format!("{gamma:.2}"),
            vec![scores[0].rel_err, scores[0].pct_groups, r * 100.0],
        );
    }
    Ok(table)
}

/// Tiny smoke configuration used by tests (fast, deterministic).
pub fn smoke_config() -> ExpConfig {
    ExpConfig {
        tpch_scale: 0.05,
        sales_rows: 5_000,
        queries_per_config: 4,
        base_rate: 0.05,
        gamma: 0.5,
        seed: 9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_tables_have_expected_shape() {
        let a = fig3a();
        assert_eq!(a.rows.len(), 21);
        // γ=0 (uniform) is worse than γ=0.5 at z=1.8.
        let col = a.column("SmGroup");
        assert!(col[5] < col[0], "gamma 0.5 {} vs gamma 0 {}", col[5], col[0]);

        let b = fig3b();
        let sg = b.column("SmGroup");
        let un = b.column("Uniform");
        // Uniform wins at z=1.0; SmGroup wins by the top of the sweep.
        assert!(un[0] <= sg[0]);
        assert!(sg[sg.len() - 1] < un[un.len() - 1]);
    }

    #[test]
    fn fig4_smoke() {
        let (rel, pct) = fig4(&smoke_config()).unwrap();
        assert_eq!(rel.rows.len(), 4);
        assert_eq!(pct.rows.len(), 4);
        for r in &rel.rows {
            assert!(r.1.iter().all(|v| v.is_finite() && *v >= 0.0));
        }
    }

    #[test]
    fn fig9_speedup_positive_and_decreasing_cost() {
        let (_, prep) = exp_perf(&ExpConfig {
            queries_per_config: 2,
            ..smoke_config()
        })
        .unwrap();
        assert_eq!(prep.rows.len(), 6);
        let table = fig9(&ExpConfig {
            queries_per_config: 2,
            ..smoke_config()
        })
        .unwrap();
        for speedup in table.column("speedup") {
            assert!(speedup > 0.0);
        }
    }

    #[test]
    fn exp_sum_smoke() {
        let t = exp_sum(&smoke_config()).unwrap();
        assert_eq!(t.rows.len(), 3);
    }

    #[test]
    fn exp_variations_smoke() {
        let t = exp_variations(&smoke_config()).unwrap();
        assert_eq!(t.rows.len(), 3);
    }

    #[test]
    fn exp_gamma_smoke() {
        let t = exp_gamma(&smoke_config()).unwrap();
        assert_eq!(t.rows.len(), 7);
        // γ = 0 means no small group tables at all.
        assert!(t.value(0, 2) > t.value(6, 2), "base rate shrinks as gamma grows");
    }
}
