//! # aqp-bench
//!
//! Experiment drivers that regenerate every table and figure of the
//! paper's evaluation (Section 5), plus shared helpers for the Criterion
//! micro-benchmarks.
//!
//! One binary per figure (`cargo run --release -p aqp-bench --bin fig4`),
//! or everything at once via `--bin run_all`. Each driver prints the same
//! rows/series the paper reports; EXPERIMENTS.md records paper-vs-measured
//! values.
//!
//! ## Micro-scale rate calibration
//!
//! The paper ran on 1–5 GB databases (0.8–30 M fact rows); this
//! reproduction runs the same pipeline at micro-scale (60 k fact rows at
//! TPC-H scale factor 1) so the full suite completes in minutes. Accuracy
//! metrics are *not* scale-free in the sampling rate: what matters is the
//! expected number of sample rows per answer group, `r·N / n_groups`.
//! Because our `N` is ~100× smaller while group *counts* shrink far less,
//! the figure drivers default to a base rate of 4 % instead of the paper's
//! 1 % to stay in the same rows-per-group regime. The rate-sweep driver
//! (`fig7`) makes this explicit by sweeping rates directly.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod datasets;
pub mod figures;
pub mod report;

pub use datasets::ExpConfig;
pub use report::FigureTable;

use aqp::prelude::*;
use aqp::workload::harness::approx_map;
use aqp::workload::metrics::metric_report;

/// Per-system accuracy aggregated over one workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkloadScore {
    /// Mean RelErr (Definition 4.2).
    pub rel_err: f64,
    /// Mean PctGroups (Definition 4.1).
    pub pct_groups: f64,
    /// Mean approximate query time (milliseconds).
    pub approx_ms: f64,
    /// Mean exact query time (milliseconds).
    pub exact_ms: f64,
}

impl WorkloadScore {
    /// Mean exact/approx speedup.
    pub fn speedup(&self) -> f64 {
        if self.approx_ms <= 0.0 {
            f64::INFINITY
        } else {
            self.exact_ms / self.approx_ms
        }
    }
}

/// Evaluate several systems over the same workload, computing each exact
/// answer once. `exact_source` is the source used for the exact side
/// (pass the star schema to include join cost in exact timings).
pub fn compare_on_workload(
    systems: &[&dyn AqpSystem],
    exact_source: &DataSource<'_>,
    queries: &[Query],
) -> Result<Vec<WorkloadScore>, Box<dyn std::error::Error>> {
    let mut scores = vec![WorkloadScore::default(); systems.len()];
    for q in queries {
        let t0 = std::time::Instant::now();
        let exact = exact_answer(exact_source, q)?;
        let exact_ms = t0.elapsed().as_secs_f64() * 1e3;
        for (i, system) in systems.iter().enumerate() {
            let t0 = std::time::Instant::now();
            let approx = system.answer(q, 0.95)?;
            let approx_ms = t0.elapsed().as_secs_f64() * 1e3;
            let report = metric_report(&exact.per_agg[0], &approx_map(&approx, 0));
            scores[i].rel_err += report.rel_err;
            scores[i].pct_groups += report.pct_groups;
            scores[i].approx_ms += approx_ms;
            scores[i].exact_ms += exact_ms;
        }
    }
    let n = queries.len().max(1) as f64;
    for s in &mut scores {
        s.rel_err /= n;
        s.pct_groups /= n;
        s.approx_ms /= n;
        s.exact_ms /= n;
    }
    Ok(scores)
}
