//! Plain-text figure tables.

use std::fmt;

/// A table of results regenerating one paper figure or in-text table.
#[derive(Debug, Clone)]
pub struct FigureTable {
    /// Title, naming the paper artefact (e.g. "Figure 4(a)").
    pub title: String,
    /// Column headers (first column is the row label).
    pub columns: Vec<String>,
    /// Rows: label plus one value per data column.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl FigureTable {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        FigureTable {
            title: title.into(),
            columns: columns.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(
            values.len() + 1,
            self.columns.len(),
            "row arity must match columns"
        );
        self.rows.push((label.into(), values));
    }

    /// The value at (row, data-column) for assertions in tests.
    pub fn value(&self, row: usize, col: usize) -> f64 {
        self.rows[row].1[col]
    }

    /// Column index by header name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name).map(|i| i - 1)
    }

    /// A data column as a vector.
    pub fn column(&self, name: &str) -> Vec<f64> {
        let idx = self
            .column_index(name)
            .unwrap_or_else(|| panic!("no column {name:?}"));
        self.rows.iter().map(|(_, v)| v[idx]).collect()
    }
}

impl fmt::Display for FigureTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        write!(f, "{:<18}", self.columns[0])?;
        for c in &self.columns[1..] {
            write!(f, "{c:>16}")?;
        }
        writeln!(f)?;
        for (label, values) in &self.rows {
            write!(f, "{label:<18}")?;
            for v in values {
                if v.abs() >= 1000.0 {
                    write!(f, "{v:>16.1}")?;
                } else {
                    write!(f, "{v:>16.4}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_render() {
        let mut t = FigureTable::new("Figure X", &["g", "SmGroup", "Uniform"]);
        t.push("1", vec![0.1, 0.5]);
        t.push("2", vec![0.2, 0.9]);
        assert_eq!(t.value(1, 0), 0.2);
        assert_eq!(t.column("Uniform"), vec![0.5, 0.9]);
        let s = t.to_string();
        assert!(s.contains("Figure X") && s.contains("SmGroup"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = FigureTable::new("t", &["a", "b"]);
        t.push("x", vec![1.0, 2.0]);
    }
}
