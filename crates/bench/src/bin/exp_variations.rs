//! Ablation of the Section 4.2.3 variations: multi-level hierarchies and
//! column-pair small group tables vs plain small group sampling.
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = aqp_bench::ExpConfig::from_env();
    println!("{}", aqp_bench::figures::exp_variations(&cfg)?);
    Ok(())
}
