//! Regenerates Sections 5.4.1 / 5.4.2: query speedups and preprocessing
//! time / space overheads.
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = aqp_bench::ExpConfig::from_env();
    let (speedups, prep) = aqp_bench::figures::exp_perf(&cfg)?;
    println!("{speedups}");
    println!("{prep}");
    Ok(())
}
