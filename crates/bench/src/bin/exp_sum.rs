//! Regenerates the Section 5.3.3 in-text table: SUM queries, small group
//! sampling enhanced with outlier indexing vs outlier indexing alone.
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = aqp_bench::ExpConfig::from_env();
    println!("{}", aqp_bench::figures::exp_sum(&cfg)?);
    Ok(())
}
