//! Regenerates Figure 5: error vs per-group selectivity on SALES.
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = aqp_bench::ExpConfig::from_env();
    println!("{}", aqp_bench::figures::fig5(&cfg)?);
    Ok(())
}
