//! Regenerates Figure 6: error vs Zipf skew on the TPCH1Gyz series.
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = aqp_bench::ExpConfig::from_env();
    println!("{}", aqp_bench::figures::fig6(&cfg)?);
    Ok(())
}
