//! Runs every experiment driver in sequence — the full evaluation section
//! of the paper in one command.
use aqp_bench::figures;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = aqp_bench::ExpConfig::from_env();
    println!("configuration: {cfg:?}\n");

    println!("{}", figures::fig3a());
    println!("{}", figures::fig3b());

    let (rel, pct) = figures::fig4(&cfg)?;
    println!("{rel}");
    println!("{pct}");

    println!("{}", figures::fig5(&cfg)?);
    println!("{}", figures::fig6(&cfg)?);
    println!("{}", figures::fig7(&cfg)?);

    let (rel, pct) = figures::fig8(&cfg)?;
    println!("{rel}");
    println!("{pct}");

    println!("{}", figures::fig9(&cfg)?);
    println!("{}", figures::exp_sum(&cfg)?);

    let (speedups, prep) = figures::exp_perf(&cfg)?;
    println!("{speedups}");
    println!("{prep}");

    println!("{}", figures::exp_variations(&cfg)?);
    println!("{}", figures::exp_gamma(&cfg)?);
    Ok(())
}
