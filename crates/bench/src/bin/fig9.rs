//! Regenerates Figure 9: speedup of small group sampling vs grouping
//! columns on the large TPCH z=1.5 database.
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = aqp_bench::ExpConfig::from_env();
    println!("{}", aqp_bench::figures::fig9(&cfg)?);
    Ok(())
}
