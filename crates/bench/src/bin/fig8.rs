//! Regenerates Figure 8: SmGroup vs BasicCongress vs Uniform on SALES.
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = aqp_bench::ExpConfig::from_env();
    let (rel, pct) = aqp_bench::figures::fig8(&cfg)?;
    println!("{rel}");
    println!("{pct}");
    Ok(())
}
