//! Regenerates Figure 3 (analytical model): SqRelErr vs allocation ratio
//! and vs skew.
fn main() {
    println!("{}", aqp_bench::figures::fig3a());
    println!("{}", aqp_bench::figures::fig3b());
}
