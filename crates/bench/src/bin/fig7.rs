//! Regenerates Figure 7: error vs base sampling rate on TPCH z=2.0.
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = aqp_bench::ExpConfig::from_env();
    println!("{}", aqp_bench::figures::fig7(&cfg)?);
    Ok(())
}
