//! Regenerates Figure 4: SmGroup vs Uniform on TPCH z=2.0, by grouping
//! columns.
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = aqp_bench::ExpConfig::from_env();
    let (rel, pct) = aqp_bench::figures::fig4(&cfg)?;
    println!("{rel}");
    println!("{pct}");
    Ok(())
}
