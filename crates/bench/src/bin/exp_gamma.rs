//! Empirical allocation-ratio ablation (the measured counterpart of the
//! paper's analytical Figure 3(a)).
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = aqp_bench::ExpConfig::from_env();
    println!("{}", aqp_bench::figures::exp_gamma(&cfg)?);
    Ok(())
}
