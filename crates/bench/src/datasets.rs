//! Experiment configuration and dataset construction.

use aqp::prelude::*;

/// Knobs shared by every experiment driver, overridable via environment
/// variables so the whole suite scales up or down without recompiling:
///
/// | variable | meaning | default |
/// |---|---|---|
/// | `AQP_SCALE` | TPC-H micro scale factor (1.0 ⇒ 60 k fact rows) | 1.0 |
/// | `AQP_SALES_ROWS` | SALES fact rows | 100 000 |
/// | `AQP_QUERIES` | queries per configuration (paper uses 20) | 20 |
/// | `AQP_RATE` | base sampling rate `r` (micro-calibrated) | 0.04 |
/// | `AQP_GAMMA` | allocation ratio γ = t/r | 0.5 |
/// | `AQP_SEED` | master RNG seed | 42 |
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// TPC-H micro scale factor.
    pub tpch_scale: f64,
    /// SALES fact rows.
    pub sales_rows: usize,
    /// Queries generated per experimental configuration.
    pub queries_per_config: usize,
    /// Base sampling rate `r`.
    pub base_rate: f64,
    /// Allocation ratio γ (the paper's recommended 0.5).
    pub gamma: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            tpch_scale: 1.0,
            sales_rows: 100_000,
            queries_per_config: 20,
            base_rate: 0.04,
            gamma: 0.5,
            seed: 42,
        }
    }
}

impl ExpConfig {
    /// Read the configuration from environment variables, falling back to
    /// the defaults.
    pub fn from_env() -> Self {
        fn var<T: std::str::FromStr>(name: &str, default: T) -> T {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        }
        let d = Self::default();
        ExpConfig {
            tpch_scale: var("AQP_SCALE", d.tpch_scale),
            sales_rows: var("AQP_SALES_ROWS", d.sales_rows),
            queries_per_config: var("AQP_QUERIES", d.queries_per_config),
            base_rate: var("AQP_RATE", d.base_rate),
            gamma: var("AQP_GAMMA", d.gamma),
            seed: var("AQP_SEED", d.seed),
        }
    }

    /// Build the skewed TPC-H star schema at this config's scale.
    pub fn tpch(&self, zipf_z: f64) -> StarSchema {
        gen_tpch(&TpchConfig {
            scale_factor: self.tpch_scale,
            zipf_z,
            seed: self.seed,
        })
        .expect("tpch generation")
    }

    /// Build the SALES star schema at this config's size.
    pub fn sales(&self) -> StarSchema {
        gen_sales(&SalesConfig {
            fact_rows: self.sales_rows,
            ..Default::default()
        })
        .expect("sales generation")
    }

    /// The dataset profile for TPC-H workload generation.
    pub fn tpch_profile(&self, view: &Table) -> DatasetProfile {
        DatasetProfile::new(
            view,
            aqp::datagen::tpch::TPCH_MEASURE_COLUMNS,
            aqp::datagen::tpch::TPCH_EXCLUDED_GROUPING,
            5000,
        )
    }

    /// The dataset profile for SALES workload generation.
    pub fn sales_profile(&self, view: &Table) -> DatasetProfile {
        DatasetProfile::new(
            view,
            aqp::datagen::sales::SALES_MEASURE_COLUMNS,
            aqp::datagen::sales::SALES_EXCLUDED_GROUPING,
            5000,
        )
    }

    /// Small-group configuration at this config's rates.
    pub fn sgs_config(&self) -> SmallGroupConfig {
        SmallGroupConfig {
            seed: self.seed,
            ..SmallGroupConfig::with_rates(self.base_rate, self.gamma)
        }
    }
}
