//! Tokeniser for the supported SQL fragment.

use crate::error::{SqlError, SqlResult};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A keyword (stored uppercase).
    Keyword(Keyword),
    /// A (possibly qualified) identifier, e.g. `lineitem.shipmode`.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Recognised keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    From,
    Where,
    Group,
    By,
    As,
    And,
    Or,
    Not,
    In,
    Between,
    Count,
    Sum,
    Avg,
    Min,
    Max,
    True,
    False,
    Null,
}

impl Keyword {
    fn from_word(word: &str) -> Option<Keyword> {
        let upper = word.to_ascii_uppercase();
        Some(match upper.as_str() {
            "SELECT" => Keyword::Select,
            "FROM" => Keyword::From,
            "WHERE" => Keyword::Where,
            "GROUP" => Keyword::Group,
            "BY" => Keyword::By,
            "AS" => Keyword::As,
            "AND" => Keyword::And,
            "OR" => Keyword::Or,
            "NOT" => Keyword::Not,
            "IN" => Keyword::In,
            "BETWEEN" => Keyword::Between,
            "COUNT" => Keyword::Count,
            "SUM" => Keyword::Sum,
            "AVG" => Keyword::Avg,
            "MIN" => Keyword::Min,
            "MAX" => Keyword::Max,
            "TRUE" => Keyword::True,
            "FALSE" => Keyword::False,
            "NULL" => Keyword::Null,
            _ => return None,
        })
    }
}

/// A token plus its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset of the token start.
    pub position: usize,
}

/// Tokenise an input string.
pub fn tokenize(input: &str) -> SqlResult<Vec<Spanned>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            c if c.is_ascii_whitespace() => {
                i += 1;
            }
            ',' => {
                tokens.push(Spanned { token: Token::Comma, position: start });
                i += 1;
            }
            '(' => {
                tokens.push(Spanned { token: Token::LParen, position: start });
                i += 1;
            }
            ')' => {
                tokens.push(Spanned { token: Token::RParen, position: start });
                i += 1;
            }
            '*' => {
                tokens.push(Spanned { token: Token::Star, position: start });
                i += 1;
            }
            '=' => {
                tokens.push(Spanned { token: Token::Eq, position: start });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Spanned { token: Token::Ne, position: start });
                    i += 2;
                } else {
                    return Err(SqlError::new("expected '=' after '!'", start));
                }
            }
            '<' => {
                match bytes.get(i + 1) {
                    Some(&b'=') => {
                        tokens.push(Spanned { token: Token::Le, position: start });
                        i += 2;
                    }
                    Some(&b'>') => {
                        tokens.push(Spanned { token: Token::Ne, position: start });
                        i += 2;
                    }
                    _ => {
                        tokens.push(Spanned { token: Token::Lt, position: start });
                        i += 1;
                    }
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Spanned { token: Token::Ge, position: start });
                    i += 2;
                } else {
                    tokens.push(Spanned { token: Token::Gt, position: start });
                    i += 1;
                }
            }
            '\'' => {
                // String literal; '' escapes a quote.
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(SqlError::new("unterminated string literal", start)),
                        Some(&b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            // Multi-byte UTF-8: copy the whole char.
                            let ch_len = utf8_len(b);
                            s.push_str(
                                std::str::from_utf8(&bytes[i..i + ch_len])
                                    .map_err(|_| SqlError::new("invalid UTF-8", i))?,
                            );
                            i += ch_len;
                        }
                    }
                }
                tokens.push(Spanned { token: Token::Str(s), position: start });
            }
            c if c.is_ascii_digit() || (c == '-' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())) => {
                let mut end = i + 1;
                let mut is_float = false;
                while end < bytes.len() {
                    let d = bytes[end] as char;
                    if d.is_ascii_digit() {
                        end += 1;
                    } else if d == '.' && !is_float && bytes.get(end + 1).is_some_and(|b| b.is_ascii_digit()) {
                        is_float = true;
                        end += 1;
                    } else if (d == 'e' || d == 'E')
                        && bytes.get(end + 1).is_some_and(|b| b.is_ascii_digit() || *b == b'-' || *b == b'+')
                    {
                        is_float = true;
                        end += 2;
                    } else {
                        break;
                    }
                }
                let text = &input[i..end];
                let token = if is_float {
                    Token::Float(
                        text.parse()
                            .map_err(|_| SqlError::new(format!("bad float {text:?}"), start))?,
                    )
                } else {
                    Token::Int(
                        text.parse()
                            .map_err(|_| SqlError::new(format!("bad integer {text:?}"), start))?,
                    )
                };
                tokens.push(Spanned { token, position: start });
                i = end;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                // Identifier, possibly dotted-qualified; keywords only when
                // the whole (undotted) word matches.
                let mut end = i;
                let mut dotted = false;
                while end < bytes.len() {
                    let d = bytes[end] as char;
                    if d.is_ascii_alphanumeric() || d == '_' || d == '#' {
                        end += 1;
                    } else if d == '.'
                        && bytes
                            .get(end + 1)
                            .is_some_and(|b| (*b as char).is_ascii_alphabetic() || *b == b'_')
                    {
                        dotted = true;
                        end += 1;
                    } else {
                        break;
                    }
                }
                let word = &input[i..end];
                let token = if !dotted {
                    match Keyword::from_word(word) {
                        Some(k) => Token::Keyword(k),
                        None => Token::Ident(word.to_owned()),
                    }
                } else {
                    Token::Ident(word.to_owned())
                };
                tokens.push(Spanned { token, position: start });
                i = end;
            }
            other => {
                return Err(SqlError::new(format!("unexpected character {other:?}"), start));
            }
        }
    }
    Ok(tokens)
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >> 5 == 0b110 => 2,
        b if b >> 4 == 0b1110 => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(input: &str) -> Vec<Token> {
        tokenize(input).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            toks("select FROM gRoUp by"),
            vec![
                Token::Keyword(Keyword::Select),
                Token::Keyword(Keyword::From),
                Token::Keyword(Keyword::Group),
                Token::Keyword(Keyword::By),
            ]
        );
    }

    #[test]
    fn qualified_idents_are_not_keywords() {
        assert_eq!(
            toks("count.x count"),
            vec![
                Token::Ident("count.x".into()),
                Token::Keyword(Keyword::Count),
            ]
        );
        assert_eq!(toks("lineitem.ship_mode"), vec![Token::Ident("lineitem.ship_mode".into())]);
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 -7 3.5 1e3 2.5e-2"),
            vec![
                Token::Int(42),
                Token::Int(-7),
                Token::Float(3.5),
                Token::Float(1000.0),
                Token::Float(0.025),
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(toks("'hello'"), vec![Token::Str("hello".into())]);
        assert_eq!(toks("'it''s'"), vec![Token::Str("it's".into())]);
        assert_eq!(toks("'Ünïcode'"), vec![Token::Str("Ünïcode".into())]);
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("= <> != < <= > >= ( ) , *"),
            vec![
                Token::Eq,
                Token::Ne,
                Token::Ne,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::LParen,
                Token::RParen,
                Token::Comma,
                Token::Star,
            ]
        );
    }

    #[test]
    fn hash_in_identifiers() {
        // Generated categorical values look like SHIP#000; allow them as
        // bare identifiers too (though they normally appear as strings).
        assert_eq!(toks("SHIP#000"), vec![Token::Ident("SHIP#000".into())]);
    }

    #[test]
    fn error_positions() {
        let err = tokenize("a @ b").unwrap_err();
        assert_eq!(err.position, 2);
    }
}
