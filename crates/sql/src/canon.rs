//! Canonical plan-key text for semantic answer caching.
//!
//! Two SQL strings that parse to the same logical plan must map to the
//! same key, and two semantically different plans must never share one.
//! The parser already erases surface syntax (whitespace, keyword case,
//! `BETWEEN` expansion); this module erases the remaining
//! semantics-free degrees of freedom:
//!
//! * aggregate **aliases** (`COUNT(*) AS c` ≡ `COUNT(*) AS n` — the alias
//!   names an output column, it does not change the answer's values);
//! * predicate **commutation and formatting** via
//!   [`Expr::canonicalize`](aqp_query::Expr::canonicalize) (And/Or order,
//!   IN-list order, integral-float comparison literals).
//!
//! Aggregate order and group-by order stay significant: they determine
//! the answer's column and key-tuple layout, which is part of the wire
//! contract. All string components are length-prefixed, so the text is
//! injective over plans — the cache can use it directly as a map key and
//! any fixed-width hash of it purely as a fingerprint.

use crate::parser::ParsedQuery;
use aqp_query::{AggFunc, Query};

/// Write one length-prefixed string (unambiguous for any content).
fn push_str_prefixed(out: &mut String, s: &str) {
    out.push_str(&s.len().to_string());
    out.push(':');
    out.push_str(s);
}

/// The canonical plan-key text for `query` against `table`.
///
/// Stable across processes and platforms: everything folded in is either
/// text or the platform-independent
/// [`Expr::canonical_encoding`](aqp_query::Expr::canonical_encoding).
pub fn plan_key_text(table: &str, query: &Query) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("plan1|t");
    push_str_prefixed(&mut out, table);
    out.push_str("|g[");
    for (i, g) in query.group_by.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str_prefixed(&mut out, g);
    }
    out.push_str("]|a[");
    for (i, a) in query.aggregates.iter().enumerate() {
        if i > 0 {
            out.push(';');
        }
        out.push_str(match a.func {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        });
        if let Some(c) = &a.column {
            out.push('(');
            push_str_prefixed(&mut out, c);
            out.push(')');
        }
    }
    out.push_str("]|w");
    match &query.predicate {
        None => out.push('-'),
        Some(p) => out.push_str(&p.canonicalize().canonical_encoding()),
    }
    out
}

impl ParsedQuery {
    /// [`plan_key_text`] for this parsed query.
    pub fn plan_key_text(&self) -> String {
        plan_key_text(&self.table, &self.query)
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_query;

    fn key(sql: &str) -> String {
        parse_query(sql).unwrap().plan_key_text()
    }

    #[test]
    fn surface_syntax_erased() {
        let base = key("SELECT g, COUNT(*) AS c FROM v WHERE a = 1 AND b >= 2.0 GROUP BY g");
        // Whitespace, keyword case, literal formatting, alias, And order.
        for same in [
            "select   g,count(*) AS c from v where a=1 and b>=2.0 group by g",
            "SELECT g, COUNT(*) AS n FROM v WHERE a = 1 AND b >= 2 GROUP BY g",
            "SELECT g, COUNT(*) FROM v WHERE b >= 2 AND a = 1.0 GROUP BY g",
        ] {
            assert_eq!(key(same), base, "{same}");
        }
    }

    #[test]
    fn semantics_kept_distinct() {
        let base = key("SELECT g, COUNT(*) FROM v WHERE a = 1 GROUP BY g");
        for diff in [
            "SELECT g, COUNT(*) FROM w WHERE a = 1 GROUP BY g", // table
            "SELECT g, COUNT(*) FROM v WHERE a = 2 GROUP BY g", // literal
            "SELECT g, COUNT(*) FROM v WHERE a <= 1 GROUP BY g", // op
            "SELECT g, COUNT(*) FROM v WHERE b = 1 GROUP BY g", // column
            "SELECT g, COUNT(*) FROM v WHERE a = 1 OR b = 1 GROUP BY g", // connective
            "SELECT h, COUNT(*) FROM v WHERE a = 1 GROUP BY h", // group col
            "SELECT g, SUM(x) FROM v WHERE a = 1 GROUP BY g",   // aggregate
            "SELECT g, COUNT(*) FROM v GROUP BY g",             // no predicate
        ] {
            assert_ne!(key(diff), base, "{diff}");
        }
        // Group-by ORDER is part of the wire layout, hence of the key.
        assert_ne!(
            key("SELECT a, b, COUNT(*) FROM v GROUP BY a, b"),
            key("SELECT b, a, COUNT(*) FROM v GROUP BY b, a"),
        );
    }

    #[test]
    fn idempotent_connectives_collapse() {
        // a=1 OR a=1 ≡ a=1 ≡ a=1 AND a=1: all three share a key.
        let base = key("SELECT g, COUNT(*) FROM v WHERE a = 1 GROUP BY g");
        assert_eq!(key("SELECT g, COUNT(*) FROM v WHERE a = 1 OR a = 1 GROUP BY g"), base);
        assert_eq!(key("SELECT g, COUNT(*) FROM v WHERE a = 1 AND a = 1 GROUP BY g"), base);
    }

    #[test]
    fn in_list_commutation_erased() {
        assert_eq!(
            key("SELECT COUNT(*) FROM v WHERE g IN ('x', 'y', 'x')"),
            key("SELECT COUNT(*) FROM v WHERE g IN ('y', 'x')"),
        );
    }
}
