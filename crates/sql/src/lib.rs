//! # aqp-sql
//!
//! A SQL front-end for the AQP middleware. The paper's runtime phase
//! intercepts SQL text and rewrites it against sample tables; this crate
//! supplies the text-side half: it parses the supported query class —
//! aggregation queries with group-bys over one (joined) view —
//! into [`aqp_query::Query`] plans.
//!
//! Supported grammar (keywords case-insensitive):
//!
//! ```sql
//! SELECT [grouping columns,] aggregates...
//! FROM view
//! [WHERE predicate]
//! [GROUP BY columns]
//! ```
//!
//! * aggregates: `COUNT(*)`, `SUM(col)`, `AVG(col)`, `MIN(col)`,
//!   `MAX(col)`, each with an optional `AS alias`;
//! * predicates: comparisons (`= <> < <= > >=`), `IN (v, ...)`,
//!   `BETWEEN lo AND hi`, combined with `AND`, `OR`, `NOT` and
//!   parentheses;
//! * literals: integers, floats, `'strings'`, `TRUE`/`FALSE`/`NULL`;
//! * column names may be qualified (`lineitem.shipmode`).
//!
//! ```
//! use aqp_sql::parse_query;
//!
//! let parsed = parse_query(
//!     "SELECT part.brand, COUNT(*) AS cnt, SUM(lineitem.extendedprice) \
//!      FROM tpch \
//!      WHERE lineitem.shipmode IN ('SHIP#000', 'SHIP#001') AND lineitem.quantity >= 5 \
//!      GROUP BY part.brand",
//! )
//! .unwrap();
//! assert_eq!(parsed.table, "tpch");
//! assert_eq!(parsed.query.group_by, vec!["part.brand".to_owned()]);
//! assert_eq!(parsed.query.aggregates.len(), 2);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod canon;
pub mod error;
pub mod lexer;
pub mod parser;

pub use canon::plan_key_text;
pub use error::{SqlError, SqlResult};
pub use parser::{parse_query, ParsedQuery};
