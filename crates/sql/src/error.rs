//! SQL parsing errors with positional context.

use std::fmt;

/// Result alias for SQL operations.
pub type SqlResult<T> = Result<T, SqlError>;

/// A parse error with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub position: usize,
}

impl SqlError {
    /// Create an error at a position.
    pub fn new(message: impl Into<String>, position: usize) -> Self {
        SqlError {
            message: message.into(),
            position,
        }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = SqlError::new("unexpected token", 17);
        let s = e.to_string();
        assert!(s.contains("17") && s.contains("unexpected token"));
    }
}
