//! Recursive-descent parser for the supported SQL fragment.

use crate::error::{SqlError, SqlResult};
use crate::lexer::{tokenize, Keyword, Spanned, Token};
use aqp_query::{AggExpr, AggFunc, CmpOp, Expr, Query};
use aqp_storage::Value;

/// A parsed SQL query: the FROM-clause view name plus the logical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedQuery {
    /// The single table/view named in FROM.
    pub table: String,
    /// The logical aggregation query.
    pub query: Query,
}

/// Parse one SQL query of the supported class.
pub fn parse_query(input: &str) -> SqlResult<ParsedQuery> {
    let _span = aqp_obs::span("query.parse");
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0, input_len: input.len() };
    let parsed = p.query()?;
    if p.pos != p.tokens.len() {
        return Err(p.err_here("trailing input after query"));
    }
    Ok(parsed)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn position(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|s| s.position)
            .unwrap_or(self.input_len)
    }

    fn err_here(&self, msg: impl Into<String>) -> SqlError {
        SqlError::new(msg, self.position())
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: Keyword) -> SqlResult<()> {
        match self.peek() {
            Some(Token::Keyword(k)) if *k == kw => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.err_here(format!("expected {kw:?}"))),
        }
    }

    fn eat_keyword(&mut self, kw: Keyword) -> bool {
        matches!(self.peek(), Some(Token::Keyword(k)) if *k == kw) && {
            self.pos += 1;
            true
        }
    }

    fn expect_token(&mut self, t: &Token, what: &str) -> SqlResult<()> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err_here(format!("expected {what}")))
        }
    }

    fn ident(&mut self, what: &str) -> SqlResult<String> {
        match self.peek() {
            Some(Token::Ident(name)) => {
                let name = name.clone();
                self.pos += 1;
                Ok(name)
            }
            _ => Err(self.err_here(format!("expected {what}"))),
        }
    }

    // query := SELECT items FROM ident (WHERE expr)? (GROUP BY idents)?
    fn query(&mut self) -> SqlResult<ParsedQuery> {
        self.expect_keyword(Keyword::Select)?;

        let mut aggregates = Vec::new();
        let mut select_columns: Vec<String> = Vec::new();
        loop {
            if let Some(agg) = self.try_aggregate()? {
                aggregates.push(agg);
            } else {
                select_columns.push(self.ident("column or aggregate in SELECT list")?);
            }
            if !matches!(self.peek(), Some(Token::Comma)) {
                break;
            }
            self.pos += 1;
        }
        if aggregates.is_empty() {
            return Err(self.err_here("SELECT list needs at least one aggregate"));
        }

        self.expect_keyword(Keyword::From)?;
        let table = self.ident("table name after FROM")?;

        let predicate = if self.eat_keyword(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };

        let group_by = if self.eat_keyword(Keyword::Group) {
            self.expect_keyword(Keyword::By)?;
            let mut cols = vec![self.ident("grouping column")?];
            while matches!(self.peek(), Some(Token::Comma)) {
                self.pos += 1;
                cols.push(self.ident("grouping column")?);
            }
            cols
        } else {
            Vec::new()
        };

        // Every non-aggregate SELECT column must be a grouping column
        // (standard SQL semantics for aggregation queries).
        for c in &select_columns {
            if !group_by.contains(c) {
                return Err(SqlError::new(
                    format!("column {c:?} in SELECT list is not in GROUP BY"),
                    0,
                ));
            }
        }

        Ok(ParsedQuery {
            table,
            query: Query {
                aggregates,
                group_by,
                predicate,
            },
        })
    }

    // agg := COUNT '(' '*' ')' | (SUM|AVG|MIN|MAX) '(' ident ')' [AS ident]
    fn try_aggregate(&mut self) -> SqlResult<Option<AggExpr>> {
        let func = match self.peek() {
            Some(Token::Keyword(Keyword::Count)) => AggFunc::Count,
            Some(Token::Keyword(Keyword::Sum)) => AggFunc::Sum,
            Some(Token::Keyword(Keyword::Avg)) => AggFunc::Avg,
            Some(Token::Keyword(Keyword::Min)) => AggFunc::Min,
            Some(Token::Keyword(Keyword::Max)) => AggFunc::Max,
            _ => return Ok(None),
        };
        self.pos += 1;
        self.expect_token(&Token::LParen, "'(' after aggregate")?;
        let column = if func == AggFunc::Count {
            self.expect_token(&Token::Star, "'*' in COUNT(*)")?;
            None
        } else {
            Some(self.ident("aggregate input column")?)
        };
        self.expect_token(&Token::RParen, "')'")?;

        let alias = if self.eat_keyword(Keyword::As) {
            self.ident("alias after AS")?
        } else {
            match &column {
                Some(c) => format!("{}_{}", func.to_string().to_ascii_lowercase(), c.replace('.', "_")),
                None => "cnt".to_owned(),
            }
        };
        Ok(Some(AggExpr { func, column, alias }))
    }

    // Pratt-free precedence: OR < AND < NOT < primary.
    fn expr(&mut self) -> SqlResult<Expr> {
        let mut terms = vec![self.and_expr()?];
        while self.eat_keyword(Keyword::Or) {
            terms.push(self.and_expr()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("nonempty")
        } else {
            Expr::Or(terms)
        })
    }

    fn and_expr(&mut self) -> SqlResult<Expr> {
        let mut terms = vec![self.unary_expr()?];
        while self.eat_keyword(Keyword::And) {
            terms.push(self.unary_expr()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("nonempty")
        } else {
            Expr::And(terms)
        })
    }

    fn unary_expr(&mut self) -> SqlResult<Expr> {
        if self.eat_keyword(Keyword::Not) {
            return Ok(Expr::Not(Box::new(self.unary_expr()?)));
        }
        if matches!(self.peek(), Some(Token::LParen)) {
            self.pos += 1;
            let inner = self.expr()?;
            self.expect_token(&Token::RParen, "')'")?;
            return Ok(inner);
        }
        self.comparison()
    }

    // comparison := ident (op literal | [NOT] IN '(' literals ')' |
    //               BETWEEN literal AND literal)
    fn comparison(&mut self) -> SqlResult<Expr> {
        let column = self.ident("column name in predicate")?;
        let negated_in = self.eat_keyword(Keyword::Not);
        if self.eat_keyword(Keyword::In) {
            self.expect_token(&Token::LParen, "'(' after IN")?;
            let mut values = vec![self.literal()?];
            while matches!(self.peek(), Some(Token::Comma)) {
                self.pos += 1;
                values.push(self.literal()?);
            }
            self.expect_token(&Token::RParen, "')'")?;
            let e = Expr::InSet { column, values };
            return Ok(if negated_in { Expr::Not(Box::new(e)) } else { e });
        }
        if negated_in {
            return Err(self.err_here("expected IN after NOT"));
        }
        if self.eat_keyword(Keyword::Between) {
            let lo = self.literal()?;
            self.expect_keyword(Keyword::And)?;
            let hi = self.literal()?;
            return Ok(Expr::And(vec![
                Expr::Cmp { column: column.clone(), op: CmpOp::Ge, literal: lo },
                Expr::Cmp { column, op: CmpOp::Le, literal: hi },
            ]));
        }
        let op = match self.advance() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Ne) => CmpOp::Ne,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            _ => {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.err_here("expected comparison operator"));
            }
        };
        let literal = self.literal()?;
        Ok(Expr::Cmp { column, op, literal })
    }

    fn literal(&mut self) -> SqlResult<Value> {
        match self.advance() {
            Some(Token::Int(v)) => Ok(Value::Int64(v)),
            Some(Token::Float(v)) => Ok(Value::Float64(v)),
            Some(Token::Str(s)) => Ok(Value::Utf8(s)),
            Some(Token::Keyword(Keyword::True)) => Ok(Value::Bool(true)),
            Some(Token::Keyword(Keyword::False)) => Ok(Value::Bool(false)),
            Some(Token::Keyword(Keyword::Null)) => Ok(Value::Null),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err_here("expected literal"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_query() {
        let p = parse_query("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(p.table, "t");
        assert_eq!(p.query.aggregates.len(), 1);
        assert_eq!(p.query.aggregates[0].func, AggFunc::Count);
        assert_eq!(p.query.aggregates[0].alias, "cnt");
        assert!(p.query.group_by.is_empty());
        assert!(p.query.predicate.is_none());
    }

    #[test]
    fn full_query() {
        let p = parse_query(
            "SELECT part.brand, lineitem.shipmode, COUNT(*) AS c, SUM(lineitem.extendedprice) AS total \
             FROM tpch \
             WHERE lineitem.quantity BETWEEN 5 AND 20 AND part.brand IN ('BRAND#000', 'BRAND#001') \
             GROUP BY part.brand, lineitem.shipmode",
        )
        .unwrap();
        assert_eq!(p.table, "tpch");
        assert_eq!(p.query.group_by, vec!["part.brand", "lineitem.shipmode"]);
        assert_eq!(p.query.aggregates[0].alias, "c");
        assert_eq!(p.query.aggregates[1].alias, "total");
        let Some(Expr::And(terms)) = &p.query.predicate else {
            panic!("expected AND")
        };
        assert_eq!(terms.len(), 2);
        // BETWEEN expands to Ge AND Le.
        let Expr::And(between) = &terms[0] else { panic!("expected expanded BETWEEN") };
        assert!(matches!(&between[0], Expr::Cmp { op: CmpOp::Ge, .. }));
        assert!(matches!(&between[1], Expr::Cmp { op: CmpOp::Le, .. }));
    }

    #[test]
    fn default_aliases() {
        let p = parse_query("SELECT SUM(sales.revenue), AVG(sales.units) FROM s").unwrap();
        assert_eq!(p.query.aggregates[0].alias, "sum_sales_revenue");
        assert_eq!(p.query.aggregates[1].alias, "avg_sales_units");
    }

    #[test]
    fn or_not_parens_precedence() {
        let p = parse_query(
            "SELECT COUNT(*) FROM t WHERE a = 1 OR b = 2 AND NOT (c = 3 OR d = 4)",
        )
        .unwrap();
        // OR binds loosest: Or[a=1, And[b=2, Not(Or[c=3, d=4])]].
        let Some(Expr::Or(or_terms)) = &p.query.predicate else {
            panic!("expected OR at top")
        };
        assert_eq!(or_terms.len(), 2);
        let Expr::And(and_terms) = &or_terms[1] else { panic!("expected AND") };
        assert!(matches!(&and_terms[1], Expr::Not(_)));
    }

    #[test]
    fn not_in() {
        let p = parse_query("SELECT COUNT(*) FROM t WHERE x NOT IN (1, 2)").unwrap();
        let Some(Expr::Not(inner)) = &p.query.predicate else { panic!("expected NOT") };
        assert!(matches!(**inner, Expr::InSet { .. }));
    }

    #[test]
    fn literal_types() {
        let p = parse_query(
            "SELECT COUNT(*) FROM t WHERE a = 1 AND b = 2.5 AND c = 'x' AND d = TRUE AND e <> FALSE",
        )
        .unwrap();
        let Some(Expr::And(terms)) = &p.query.predicate else { panic!() };
        let lits: Vec<&Value> = terms
            .iter()
            .map(|t| match t {
                Expr::Cmp { literal, .. } => literal,
                _ => panic!("expected comparison"),
            })
            .collect();
        assert_eq!(lits[0], &Value::Int64(1));
        assert_eq!(lits[1], &Value::Float64(2.5));
        assert_eq!(lits[2], &Value::Utf8("x".into()));
        assert_eq!(lits[3], &Value::Bool(true));
        assert_eq!(lits[4], &Value::Bool(false));
    }

    #[test]
    fn min_max_parse() {
        let p = parse_query("SELECT MIN(x) AS lo, MAX(x) AS hi FROM t").unwrap();
        assert_eq!(p.query.aggregates[0].func, AggFunc::Min);
        assert_eq!(p.query.aggregates[1].func, AggFunc::Max);
    }

    #[test]
    fn select_columns_must_be_grouped() {
        let err = parse_query("SELECT a, COUNT(*) FROM t GROUP BY b").unwrap_err();
        assert!(err.message.contains("not in GROUP BY"), "{err}");
        assert!(parse_query("SELECT a, COUNT(*) FROM t GROUP BY a").is_ok());
    }

    #[test]
    fn error_cases() {
        for (sql, needle) in [
            ("SELECT FROM t", "column or aggregate"),
            ("SELECT a FROM t GROUP BY a", "at least one aggregate"),
            ("SELECT COUNT(*)", "expected From"),
            ("SELECT COUNT(x) FROM t", "'*' in COUNT(*)"),
            ("SELECT SUM(*) FROM t", "aggregate input column"),
            ("SELECT COUNT(*) FROM t WHERE", "column name in predicate"),
            ("SELECT COUNT(*) FROM t WHERE a", "comparison operator"),
            ("SELECT COUNT(*) FROM t WHERE a = ", "expected literal"),
            ("SELECT COUNT(*) FROM t WHERE a NOT b", "expected IN after NOT"),
            ("SELECT COUNT(*) FROM t trailing", "trailing input"),
            ("SELECT COUNT(*) FROM t GROUP BY", "grouping column"),
        ] {
            let err = parse_query(sql).unwrap_err();
            assert!(
                err.message.contains(needle),
                "for {sql:?}: got {:?}, wanted {needle:?}",
                err.message
            );
        }
    }

    #[test]
    fn roundtrip_display_reparses() {
        // Query::Display emits SQL-ish text (without FROM); re-wrapping it
        // in a FROM clause must reparse to the same logical plan.
        let original = parse_query(
            "SELECT g, COUNT(*) AS cnt FROM t WHERE a IN (1, 2) AND b >= 3.5 GROUP BY g",
        )
        .unwrap();
        let rendered = original.query.to_string();
        let (head, tail) = rendered
            .split_once(" WHERE ")
            .expect("rendered query has WHERE");
        let again = parse_query(&format!("{head} FROM t WHERE {tail}")).unwrap();
        assert_eq!(original.query, again.query);
    }
}
