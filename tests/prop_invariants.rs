//! Property-based invariants over randomly generated databases.
//!
//! The central one is the **partition property** behind the paper's
//! bitmask scheme: for any data distribution, any choice of rates, and any
//! grouping set, the rewritten UNION ALL plan at a 100 % overall rate
//! reproduces the exact answer — meaning the strata partition every row
//! exactly once. The others pin the preprocessing size bounds and the
//! never-spurious-groups guarantee at arbitrary rates.

use aqp::prelude::*;
use proptest::prelude::*;

/// A random small categorical table: 1–3 group columns over small
/// alphabets (with skewed value draws), plus one measure column.
fn arb_table() -> impl Strategy<Value = Table> {
    let row = (0usize..6, 0usize..10, 0usize..4, 0i64..100);
    (proptest::collection::vec(row, 1..300)).prop_map(|rows| {
        let schema = SchemaBuilder::new()
            .field("a", DataType::Utf8)
            .field("b", DataType::Int64)
            .field("c", DataType::Utf8)
            .field("x", DataType::Int64)
            .build()
            .unwrap();
        let mut t = Table::empty("t", schema);
        for (a, b, c, x) in rows {
            // Skew: square the draw so low indexes dominate.
            let a = a * a / 6;
            t.push_row(&[
                format!("a{a}").into(),
                (b as i64 * b as i64 / 10).into(),
                format!("c{c}").into(),
                x.into(),
            ])
            .unwrap();
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Partition property: at base_rate = 1.0 the rewritten plan equals
    /// the exact answer for every grouping set, bit-for-bit.
    #[test]
    fn full_rate_partition_property(
        view in arb_table(),
        t in 0.01f64..0.4,
        seed in 0u64..50,
        group_mask in 1usize..8, // nonempty subset of {a, b, c}
    ) {
        let sampler = SmallGroupSampler::build(
            &view,
            SmallGroupConfig {
                base_rate: 1.0,
                small_group_fraction: t,
                seed,
                ..Default::default()
            },
        ).unwrap();

        let all = ["a", "b", "c"];
        let group_by: Vec<&str> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| group_mask & (1 << i) != 0)
            .map(|(_, c)| *c)
            .collect();
        let mut b = Query::builder().count().sum("x");
        for g in &group_by {
            b = b.group_by(*g);
        }
        let q = b.build().unwrap();

        let exact = exact_answer(&DataSource::Wide(&view), &q).unwrap();
        let approx = sampler.answer(&q, 0.95).unwrap();
        prop_assert_eq!(exact.per_agg[0].len(), approx.num_groups());
        for g in &approx.groups {
            let count_truth = exact.per_agg[0][&g.key];
            let sum_truth = exact.per_agg[1][&g.key];
            prop_assert!((g.values[0].value() - count_truth).abs() < 1e-6,
                "count {:?}: {} vs {}", g.key, g.values[0].value(), count_truth);
            prop_assert!((g.values[1].value() - sum_truth).abs() < 1e-6,
                "sum {:?}: {} vs {}", g.key, g.values[1].value(), sum_truth);
        }
    }

    /// At any rate: answers never contain spurious groups, estimates are
    /// finite and non-negative for COUNT, and exact-flagged groups agree
    /// with the exact answer.
    #[test]
    fn sampled_answers_sound(
        view in arb_table(),
        rate in 0.05f64..1.0,
        t in 0.01f64..0.3,
        seed in 0u64..50,
    ) {
        let sampler = SmallGroupSampler::build(
            &view,
            SmallGroupConfig {
                base_rate: rate,
                small_group_fraction: t,
                seed,
                ..Default::default()
            },
        ).unwrap();
        let q = Query::builder().count().group_by("a").group_by("c").build().unwrap();
        let exact = exact_answer(&DataSource::Wide(&view), &q).unwrap();
        let approx = sampler.answer(&q, 0.95).unwrap();
        for g in &approx.groups {
            prop_assert!(exact.per_agg[0].contains_key(&g.key),
                "spurious group {:?}", g.key);
            let v = &g.values[0];
            prop_assert!(v.value().is_finite() && v.value() >= 0.0);
            prop_assert!(v.ci.lo <= v.value() + 1e-9 && v.value() <= v.ci.hi + 1e-9);
            if v.is_exact() {
                prop_assert!((v.value() - exact.per_agg[0][&g.key]).abs() < 1e-6);
            }
        }
    }

    /// Preprocessing size bounds hold for any data: every small group
    /// table ≤ N·t rows (+1 for rounding), overall sample ≈ N·r.
    #[test]
    fn preprocessing_size_bounds(
        view in arb_table(),
        rate in 0.05f64..1.0,
        t in 0.01f64..0.3,
        seed in 0u64..50,
    ) {
        let sampler = SmallGroupSampler::build(
            &view,
            SmallGroupConfig {
                base_rate: rate,
                small_group_fraction: t,
                seed,
                ..Default::default()
            },
        ).unwrap();
        let n = view.num_rows() as f64;
        for meta in &sampler.catalog().columns {
            prop_assert!(meta.rows as f64 <= n * t + 1.0,
                "{}: {} rows > N*t {}", meta.name, meta.rows, n * t);
        }
        let target = (n * rate).round().min(n);
        prop_assert!((sampler.catalog().overall_rows as f64 - target).abs() <= 1.0);
    }

    /// Congress weights are Horvitz–Thompson consistent for any data: the
    /// ungrouped COUNT estimate equals the weight total (an identity), the
    /// weighted total is the right order of magnitude (unbiasedness is
    /// checked statistically in the unit tests), and every weight is a
    /// valid inverse inclusion probability (≥ 1).
    #[test]
    fn congress_weight_consistency(
        view in arb_table(),
        budget_frac in 0.2f64..1.0,
        seed in 0u64..50,
    ) {
        let budget = ((view.num_rows() as f64 * budget_frac) as usize).max(1);
        let cols = vec!["a".to_owned()];
        let congress = BasicCongress::build(&view, &cols, budget, seed).unwrap();
        let q = Query::builder().count().build().unwrap();
        let ans = congress.answer(&q, 0.95).unwrap();
        prop_assert!((ans.groups[0].values[0].value() - congress.weight_total()).abs() < 1e-6);
        let n = view.num_rows() as f64;
        prop_assert!(congress.weight_total() <= 2.5 * n + 1.0,
            "total {} vs n {}", congress.weight_total(), n);
        // Randomized rounding can draw zero rows at tiny budgets; a zero
        // weight total is only legal alongside an empty sample.
        prop_assert!(congress.weight_total() > 0.0 || congress.sample_rows() == 0);
    }

    /// Outlier selection always returns exactly min(k, n) indices, within
    /// bounds, sorted, and with no duplicates.
    #[test]
    fn outlier_selection_well_formed(
        values in proptest::collection::vec(-1e6f64..1e6, 0..60),
        k in 0usize..70,
    ) {
        use aqp::core::select_outliers;
        let out = select_outliers(&values, k);
        prop_assert_eq!(out.len(), k.min(values.len()));
        prop_assert!(out.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(out.iter().all(|&i| i < values.len()));
    }
}
