//! Corruption-corpus property tests over the two on-disk codecs.
//!
//! The contract: for any `AQPT` table file or `AQPS` family file, any
//! single-byte mutation is either *detected* (a typed error — never a
//! panic) or decodes to a byte-identical artifact. There is no third
//! outcome; a silent misparse is the one thing the CRC discipline must
//! make impossible. Single-bit and single-byte errors are exactly the
//! class CRC32C detects unconditionally, so in practice every mutation
//! below must be rejected.

use aqp::core::persist::{decode_sampler, decode_sampler_salvage, encode_sampler};
use aqp::prelude::*;
use aqp::storage::{decode_table, encode_table};
use proptest::prelude::*;

fn small_table(rows: usize, seed: u64) -> Table {
    let schema = SchemaBuilder::new()
        .field("g", DataType::Utf8)
        .field("n", DataType::Int64)
        .field("x", DataType::Float64)
        .build()
        .unwrap();
    let mut t = Table::empty("corpus", schema);
    for i in 0..rows {
        let mix = i as u64 ^ seed.rotate_left(i as u32 % 13);
        t.push_row(&[
            format!("g{}", mix % 7).into(),
            (mix as i64 % 100).into(),
            ((mix % 1000) as f64 / 3.0).into(),
        ])
        .unwrap();
    }
    t
}

fn small_family(rows: usize, seed: u64) -> SmallGroupSampler {
    SmallGroupSampler::build(
        &small_table(rows, seed),
        SmallGroupConfig {
            seed,
            ..SmallGroupConfig::with_rates(0.2, 0.5)
        },
    )
    .unwrap()
}

/// Exhaustive sweep: flip one bit in *every* byte of an encoded table.
/// CRC32C detects all single-bit errors, so every flip in the header or
/// core section must be rejected. The trailing zone-map section is
/// *derived* data under its own CRC: a flip there degrades the load to
/// "no persisted maps" by design, and re-encoding recomputes the maps
/// from the (intact) core — byte-identical to the pristine file. Either
/// way, no flip may silently misparse.
#[test]
fn every_single_bit_flip_in_table_file_is_detected() {
    let bytes = encode_table(&small_table(40, 9)).unwrap();
    // AQPT v3: magic(4) | version(2) | crc(4) | core_len(8) | core | zone.
    let core_len = u64::from_le_bytes(bytes[10..18].try_into().unwrap()) as usize;
    let zone_start = 18 + core_len;
    for pos in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[pos] ^= 1;
        match decode_table(&bad) {
            Err(_) => {}
            Ok(decoded) => {
                assert!(
                    pos >= zone_start,
                    "flip at byte {pos}/{} (core region) went undetected",
                    bytes.len()
                );
                assert_eq!(
                    encode_table(&decoded).unwrap(),
                    bytes,
                    "zone flip at byte {pos} silently misparsed"
                );
            }
        }
    }
}

/// Same sweep over a whole sample-family file: the strict decoder must
/// reject every flip, and the salvage decoder must never panic on one.
#[test]
fn every_single_bit_flip_in_family_file_is_detected() {
    let bytes = encode_sampler(&small_family(120, 3)).unwrap();
    for pos in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[pos] ^= 1;
        assert!(
            decode_sampler(&bad).is_err(),
            "flip at byte {pos}/{} went undetected",
            bytes.len()
        );
        // Salvage may recover (disabling units) or reject — but must not
        // panic or misparse silently into a full-strength family. A flip
        // inside an embedded table's zone section legitimately yields an
        // intact family whose re-encode (maps recomputed from intact
        // cores) is byte-identical to the pristine file.
        if let Ok((salvaged, lost)) = decode_sampler_salvage(&bad) {
            assert!(
                !lost.is_empty()
                    || pos < 10
                    || encode_sampler(&salvaged).unwrap() == bytes,
                "salvage at byte {pos} claimed an intact family from corrupt bytes"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round-trip: encode → decode → re-encode is byte-identical for
    /// arbitrary table shapes.
    #[test]
    fn table_roundtrip_is_byte_stable(rows in 1usize..80, seed in 0u64..1000) {
        let bytes = encode_table(&small_table(rows, seed)).unwrap();
        let decoded = decode_table(&bytes).unwrap();
        prop_assert_eq!(encode_table(&decoded).unwrap(), bytes);
    }

    /// Arbitrary single-byte mutation (any position, any xor mask) of a
    /// table file: detected or byte-identical — never a silent misparse.
    #[test]
    fn mutated_table_byte_never_misparses(
        rows in 1usize..60,
        seed in 0u64..1000,
        pos_pick in 0usize..100_000,
        mask in 1u32..256,
    ) {
        let bytes = encode_table(&small_table(rows, seed)).unwrap();
        let pos = pos_pick % bytes.len();
        let mut bad = bytes.clone();
        bad[pos] ^= mask as u8;
        match decode_table(&bad) {
            Err(_) => {} // detected
            Ok(decoded) => {
                prop_assert_eq!(
                    encode_table(&decoded).unwrap(),
                    bytes,
                    "mutation at {} (mask {:#04x}) silently misparsed",
                    pos,
                    mask
                );
            }
        }
    }

    /// The same contract for family files, plus salvage never panics.
    #[test]
    fn mutated_family_byte_never_misparses(
        seed in 0u64..200,
        pos_pick in 0usize..1_000_000,
        mask in 1u32..256,
    ) {
        let bytes = encode_sampler(&small_family(100, seed)).unwrap();
        let pos = pos_pick % bytes.len();
        let mut bad = bytes.clone();
        bad[pos] ^= mask as u8;
        match decode_sampler(&bad) {
            Err(_) => {}
            Ok(decoded) => {
                prop_assert_eq!(
                    encode_sampler(&decoded).unwrap(),
                    bytes,
                    "mutation at {} (mask {:#04x}) silently misparsed",
                    pos,
                    mask
                );
            }
        }
        let _ = decode_sampler_salvage(&bad); // must not panic
    }

    /// Truncation at any length: both decoders reject or recover, and
    /// never panic on short input.
    #[test]
    fn truncated_files_never_panic(seed in 0u64..200, cut_pick in 0usize..1_000_000) {
        let bytes = encode_sampler(&small_family(80, seed)).unwrap();
        let cut = cut_pick % bytes.len();
        prop_assert!(decode_sampler(&bytes[..cut]).is_err());
        let _ = decode_sampler_salvage(&bytes[..cut]);

        let tbytes = encode_table(&small_table(30, seed)).unwrap();
        let tcut = cut_pick % tbytes.len();
        // Cutting inside the core must be rejected; cutting inside the
        // derived zone section degrades to "no persisted maps", and the
        // re-encode (maps recomputed) matches the pristine file.
        let core_end = 18 + u64::from_le_bytes(tbytes[10..18].try_into().unwrap()) as usize;
        match decode_table(&tbytes[..tcut]) {
            Err(_) => {}
            Ok(decoded) => {
                prop_assert!(tcut >= core_end, "truncation at {} inside core decoded", tcut);
                prop_assert_eq!(encode_table(&decoded).unwrap(), tbytes);
            }
        }
    }
}
