//! Statistical properties of the estimators, checked over many seeds:
//! unbiasedness, confidence-interval coverage, and the paper's headline
//! accuracy ordering on skewed data.

use aqp::prelude::*;
use aqp::workload::harness::approx_map;
use aqp::workload::metrics::metric_report;

/// 2 000-row table with one dominant group and a long tail of small ones.
fn skewed_table() -> Table {
    let schema = SchemaBuilder::new()
        .field("g", DataType::Utf8)
        .field("x", DataType::Float64)
        .build()
        .unwrap();
    let mut t = Table::empty("v", schema);
    for i in 0..1_800 {
        t.push_row(&["major".into(), ((i % 10) as f64).into()]).unwrap();
    }
    for grp in 0..40 {
        for j in 0..5 {
            t.push_row(&[format!("minor{grp}").into(), (j as f64).into()])
                .unwrap();
        }
    }
    t
}

#[test]
fn uniform_count_estimator_is_unbiased() {
    // Mean of the ungrouped COUNT estimate over many seeds ≈ N.
    let v = skewed_table();
    let q = Query::builder().count().build().unwrap();
    let mut mean = 0.0;
    let trials = 60;
    for seed in 0..trials {
        let u = UniformAqp::build(&v, 0.05, seed).unwrap();
        mean += u.answer(&q, 0.95).unwrap().groups[0].values[0].value();
    }
    mean /= trials as f64;
    // WOR of fixed size estimates the total exactly; allow rounding slack.
    assert!((mean - 2000.0).abs() < 25.0, "mean estimate {mean}");
}

#[test]
fn sgs_count_estimator_is_unbiased_per_group() {
    // The merged multi-strata estimator must stay unbiased: average the
    // "major" group's estimate over seeds.
    let v = skewed_table();
    let q = Query::builder().count().group_by("g").build().unwrap();
    let mut mean = 0.0;
    let trials = 60;
    for seed in 0..trials {
        let sgs = SmallGroupSampler::build(
            &v,
            SmallGroupConfig {
                base_rate: 0.05,
                small_group_fraction: 0.025,
                seed,
                ..Default::default()
            },
        )
        .unwrap();
        let ans = sgs.answer(&q, 0.95).unwrap();
        mean += ans
            .group(&[Value::Utf8("major".into())])
            .map(|g| g.values[0].value())
            .unwrap_or(0.0);
    }
    mean /= trials as f64;
    let truth = 1800.0;
    assert!(
        (mean - truth).abs() / truth < 0.05,
        "mean estimate {mean} vs {truth}"
    );
}

#[test]
fn confidence_intervals_cover_near_nominal() {
    // 95% CIs on the "major" group should cover the truth ≈ 95% of the
    // time; accept [85%, 100%] over 80 seeds.
    let v = skewed_table();
    let q = Query::builder().count().group_by("g").build().unwrap();
    let trials = 80;
    let mut covered = 0;
    for seed in 0..trials {
        let sgs = SmallGroupSampler::build(
            &v,
            SmallGroupConfig {
                base_rate: 0.05,
                small_group_fraction: 0.025,
                seed: seed + 1000,
                ..Default::default()
            },
        )
        .unwrap();
        let ans = sgs.answer(&q, 0.95).unwrap();
        if let Some(g) = ans.group(&[Value::Utf8("major".into())]) {
            if g.values[0].ci.contains(1800.0) {
                covered += 1;
            }
        }
    }
    let rate = covered as f64 / trials as f64;
    assert!(rate >= 0.85, "coverage {rate}");
}

#[test]
fn small_groups_always_exact_regardless_of_seed() {
    let v = skewed_table();
    let q = Query::builder().count().group_by("g").build().unwrap();
    for seed in 0..20 {
        // The 40 minor groups hold 200 of 2000 rows (10% mass), so the
        // small-group fraction must be at least 0.1 for L(g) to leave all
        // of them uncommon.
        let sgs = SmallGroupSampler::build(
            &v,
            SmallGroupConfig {
                base_rate: 0.05,
                small_group_fraction: 0.11,
                seed,
                ..Default::default()
            },
        )
        .unwrap();
        let ans = sgs.answer(&q, 0.95).unwrap();
        // Every minor group must be present and exact with value 5.
        for grp in 0..40 {
            let key = vec![Value::Utf8(format!("minor{grp}"))];
            let g = ans.group(&key).unwrap_or_else(|| panic!("minor{grp} missing, seed {seed}"));
            assert!(g.values[0].is_exact(), "minor{grp} not exact, seed {seed}");
            assert_eq!(g.values[0].value(), 5.0);
        }
    }
}

#[test]
fn accuracy_ordering_on_skewed_tpch() {
    // The paper's headline: on skewed data at equal budget, small group
    // sampling beats uniform on both RelErr and PctGroups (averaged over
    // a workload).
    let star = gen_tpch(&TpchConfig {
        scale_factor: 0.1,
        zipf_z: 2.0,
        seed: 3,
    })
    .unwrap();
    let view = star.denormalize("v").unwrap();
    let profile = DatasetProfile::new(
        &view,
        aqp::datagen::tpch::TPCH_MEASURE_COLUMNS,
        aqp::datagen::tpch::TPCH_EXCLUDED_GROUPING,
        5000,
    );
    let g = 2usize;
    let queries = generate_queries(
        &profile,
        &QueryGenConfig {
            grouping_columns: g,
            num_predicates: 1,
            aggregate: WorkloadAggregate::Count,
            seed: 11,
            ..Default::default()
        },
        15,
    );

    let base = 0.01;
    let gamma = 0.5;
    let sgs = SmallGroupSampler::build(&view, SmallGroupConfig::with_rates(base, gamma)).unwrap();
    let uni = UniformAqp::build(&view, UniformAqp::matched_rate(base, gamma, g), 3).unwrap();

    let src = DataSource::Wide(&view);
    let mut sgs_rel = 0.0;
    let mut uni_rel = 0.0;
    let mut sgs_pct = 0.0;
    let mut uni_pct = 0.0;
    for q in &queries {
        let exact = exact_answer(&src, q).unwrap();
        let a = sgs.answer(q, 0.95).unwrap();
        let b = uni.answer(q, 0.95).unwrap();
        let ra = metric_report(&exact.per_agg[0], &approx_map(&a, 0));
        let rb = metric_report(&exact.per_agg[0], &approx_map(&b, 0));
        sgs_rel += ra.rel_err;
        uni_rel += rb.rel_err;
        sgs_pct += ra.pct_groups;
        uni_pct += rb.pct_groups;
    }
    assert!(
        sgs_rel < uni_rel,
        "RelErr: SGS {sgs_rel} vs Uniform {uni_rel} (totals over workload)"
    );
    assert!(
        sgs_pct < uni_pct,
        "PctGroups: SGS {sgs_pct} vs Uniform {uni_pct}"
    );
}

#[test]
fn sgs_outlier_beats_plain_outlier_on_sum() {
    // Section 5.3.3's qualitative claim on the SALES-like database.
    let star = gen_sales(&SalesConfig {
        fact_rows: 30_000,
        ..Default::default()
    })
    .unwrap();
    let view = star.denormalize("v").unwrap();
    let profile = DatasetProfile::new(
        &view,
        aqp::datagen::sales::SALES_MEASURE_COLUMNS,
        aqp::datagen::sales::SALES_EXCLUDED_GROUPING,
        5000,
    );
    // One grouping column and no very-selective predicates: the paper's
    // SALES SUM experiments operate on groups of hundreds of rows (its
    // per-group selectivity buckets start at 0.02% of 800k rows); at our
    // micro-scale a 2-column group-by would leave single-digit-row groups
    // where every system drowns in overshoot noise.
    let queries = generate_queries(
        &profile,
        &QueryGenConfig {
            grouping_columns: 1,
            num_predicates: 1,
            aggregate: WorkloadAggregate::Sum,
            seed: 21,
            ..Default::default()
        },
        12,
    );

    let base = 0.02;
    let sgs_outlier = SmallGroupSampler::build(
        &view,
        SmallGroupConfig {
            overall: OverallKind::OutlierIndexed {
                column: "sales.revenue".into(),
            },
            ..SmallGroupConfig::with_rates(base, 0.5)
        },
    )
    .unwrap();
    // Fairness: a 1-grouping-column SGS query touches ≈ r(1+γ)·N rows, so
    // plain outlier indexing gets the same budget, split half outliers /
    // half uniform sample of the rest (mirroring the combo's split).
    let budget = (view.num_rows() as f64 * base * 1.5) as usize;
    let rest_rate = (budget as f64 / 2.0) / view.num_rows() as f64;
    let outlier = OutlierIndex::build(&view, "sales.revenue", budget / 2, rest_rate, 5).unwrap();

    let src = DataSource::Wide(&view);
    let mut combo_rel = 0.0;
    let mut plain_rel = 0.0;
    for q in &queries {
        let exact = exact_answer(&src, q).unwrap();
        let a = sgs_outlier.answer(q, 0.95).unwrap();
        let b = outlier.answer(q, 0.95).unwrap();
        combo_rel += metric_report(&exact.per_agg[0], &approx_map(&a, 0)).rel_err;
        plain_rel += metric_report(&exact.per_agg[0], &approx_map(&b, 0)).rel_err;
    }
    assert!(
        combo_rel < plain_rel,
        "SUM workload: SmGroup+Outlier {combo_rel} vs OutlierIndex {plain_rel}"
    );
}

#[test]
fn uniform_sum_and_count_unbiased_over_many_seeds() {
    // Regression guard for the morsel-parallel scan path: over 240 seeded
    // uniform draws, the *mean* signed relative error of both SUM and
    // COUNT must sit within a fixed tolerance of zero. A systematic bias
    // introduced anywhere in the scan → partial-state merge → estimator
    // chain (double-counted morsel, dropped boundary row, bad weight
    // inflation) shifts the mean far outside this band, while ordinary
    // sampling noise averages out: one draw of 200 rows has a SUM
    // standard error near 5%, so the mean of 240 draws sits near 0.3%.
    let v = skewed_table();
    let q = Query::builder().count().sum("x").build().unwrap();
    let exact = exact_answer(&DataSource::Wide(&v), &q).unwrap();
    let true_count = *exact.per_agg[0].get(&Vec::new()).unwrap();
    let true_sum = *exact.per_agg[1].get(&Vec::new()).unwrap();
    assert!(true_count > 0.0 && true_sum > 0.0);

    let trials = 240;
    let mut count_rel = 0.0;
    let mut sum_rel = 0.0;
    for seed in 0..trials {
        let u = UniformAqp::build(&v, 0.1, seed + 7_000).unwrap();
        let ans = u.answer(&q, 0.95).unwrap();
        count_rel += (ans.groups[0].values[0].value() - true_count) / true_count;
        sum_rel += (ans.groups[0].values[1].value() - true_sum) / true_sum;
    }
    count_rel /= trials as f64;
    sum_rel /= trials as f64;
    // WOR fixed-size draws estimate COUNT almost exactly; SUM carries the
    // sampling noise. 1% is ≈ 3 standard errors of the 240-draw mean.
    assert!(count_rel.abs() < 0.01, "mean COUNT rel err {count_rel}");
    assert!(sum_rel.abs() < 0.01, "mean SUM rel err {sum_rel}");
}

/// Every bit of every answer in a 240-seed regression, for comparing runs.
fn answer_bits(v: &Table, q: &Query, trials: u64) -> Vec<u64> {
    let mut bits = Vec::new();
    for seed in 0..trials {
        let u = UniformAqp::build(v, 0.1, seed + 7_000).unwrap();
        let ans = u.answer(q, 0.95).unwrap();
        bits.push(ans.rows_scanned as u64);
        for g in &ans.groups {
            for val in &g.values {
                bits.push(val.value().to_bits());
                bits.push(val.ci.lo.to_bits());
                bits.push(val.ci.hi.to_bits());
            }
        }
    }
    bits
}

#[test]
fn kernel_toggle_never_perturbs_answers() {
    // The vectorised kernels are a pure execution-strategy change: the
    // 240-seed statistical regression repeated with the scalar reference
    // loop and with the vectorised kernels produces bit-identical
    // estimates, confidence intervals and rows-scanned counts. The
    // process-wide override is restored to Auto even on panic.
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            aqp::query::set_kernel_mode(aqp::query::KernelMode::Auto);
        }
    }
    let _restore = Restore;
    let v = skewed_table();
    let q = Query::builder().count().sum("x").build().unwrap();
    let trials = 240;
    aqp::query::set_kernel_mode(aqp::query::KernelMode::Scalar);
    let scalar = answer_bits(&v, &q, trials);
    aqp::query::set_kernel_mode(aqp::query::KernelMode::Vectorized);
    let vectorized = answer_bits(&v, &q, trials);
    assert_eq!(scalar, vectorized, "kernel toggle changed answers");
}

#[test]
fn metrics_toggle_never_perturbs_answers() {
    // Observability must be pure bookkeeping: the 240-seed statistical
    // regression repeated with metric collection on and off produces
    // bit-identical estimates, confidence intervals and rows-scanned
    // counts — spans, counters and traces never leak into the answers.
    let v = skewed_table();
    let q = Query::builder().count().sum("x").build().unwrap();
    let trials = 240;
    aqp::obs::set_enabled(true);
    let with_metrics = answer_bits(&v, &q, trials);
    aqp::obs::set_enabled(false);
    let without_metrics = answer_bits(&v, &q, trials);
    aqp::obs::set_enabled(true);
    assert_eq!(with_metrics, without_metrics, "metrics toggle changed answers");

    // The traced path is answer() plus bookkeeping: same bits again.
    let sgs = SmallGroupSampler::build(
        &v,
        SmallGroupConfig {
            base_rate: 0.1,
            small_group_fraction: 0.1,
            seed: 11,
            ..Default::default()
        },
    )
    .unwrap();
    let gq = Query::builder().count().sum("x").group_by("g").build().unwrap();
    let mut plain = sgs.answer(&gq, 0.95).unwrap();
    let (mut traced, trace) = sgs.answer_traced(&gq, 0.95).unwrap();
    plain.sort_by_key();
    traced.sort_by_key();
    assert_eq!(plain.rows_scanned, traced.rows_scanned);
    assert_eq!(trace.rows_scanned, traced.rows_scanned as u64);
    for (a, b) in plain.groups.iter().zip(&traced.groups) {
        assert_eq!(a.key, b.key);
        for (va, vb) in a.values.iter().zip(&b.values) {
            assert_eq!(va.value().to_bits(), vb.value().to_bits());
            assert_eq!(va.ci.lo.to_bits(), vb.ci.lo.to_bits());
            assert_eq!(va.ci.hi.to_bits(), vb.ci.hi.to_bits());
        }
    }
}
