//! Fault-matrix integration tests: inject storage faults and verify the
//! degradation ladder keeps answering every workload query, tagged with
//! the serving tier, with zero panics.
//!
//! Faults are injected two ways:
//!
//! * programmatically via `fault::install`, one fault class per test;
//! * through the `AQP_FAULTS` environment variable, which the CI
//!   fault-matrix job sets to one spec per run (scoped to paths containing
//!   `envfault`, which only [`env_fault_matrix_still_answers_everything`]
//!   uses).

use aqp::prelude::*;
use aqp::storage::fault::{self, Fault, FaultPlan};
use std::path::PathBuf;

fn sales_view(rows: usize) -> Table {
    let star = gen_sales(&SalesConfig {
        fact_rows: rows,
        ..Default::default()
    })
    .expect("sales generation");
    star.denormalize("sales_view").expect("denormalize")
}

/// A temp dir whose name carries `token` so fault plans can scope to it.
fn scoped_dir(token: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aqp_resil_{token}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn build_and_save(view: &Table, path: &PathBuf) -> SmallGroupSampler {
    let sampler = SmallGroupSampler::build(view, SmallGroupConfig::with_rates(0.05, 0.5))
        .expect("preprocessing");
    sampler.save(path).expect("save family");
    sampler
}

fn workload(view: &Table) -> Vec<Query> {
    let profile = DatasetProfile::new(
        view,
        aqp::datagen::sales::SALES_MEASURE_COLUMNS,
        aqp::datagen::sales::SALES_EXCLUDED_GROUPING,
        5000,
    );
    generate_queries(
        &profile,
        &QueryGenConfig {
            grouping_columns: 1,
            num_predicates: 1,
            seed: 11,
            ..Default::default()
        },
        6,
    )
}

/// Answer every query, tally tiers, and require zero failures: the core
/// acceptance loop shared by all fault classes.
fn answer_all(system: &ResilientSystem, queries: &[Query]) -> TierCounts {
    let mut counts = TierCounts::default();
    for q in queries {
        // Zero groups is a legitimate approximate answer (a selective
        // predicate can miss the whole sample); an Err or panic is not.
        let ans = system
            .answer(q, 0.95)
            .unwrap_or_else(|e| panic!("query {q} must be served by some tier: {e}"));
        counts.record(&ans);
    }
    assert_eq!(counts.total(), queries.len());
    counts
}

/// Byte offset of the `nth` embedded AQPT table block in a saved family
/// file (0-based), located by scanning for the table magic.
fn nth_table_offset(bytes: &[u8], nth: usize) -> usize {
    let mut seen = 0;
    for i in 10..bytes.len().saturating_sub(4) {
        if &bytes[i..i + 4] == b"AQPT" {
            if seen == nth {
                return i;
            }
            seen += 1;
        }
    }
    panic!("family file has fewer than {} embedded tables", nth + 1);
}

#[test]
fn missing_family_serves_from_exact_tier() {
    let view = sales_view(4000);
    let dir = scoped_dir("missing");
    let path = dir.join("family.aqps");
    build_and_save(&view, &path);
    let queries = workload(&view);

    let counts = {
        let _g = fault::install(FaultPlan::new(Fault::Missing).for_paths("aqp_resil_missing"));
        let (system, report) = ResilientSystem::open(&path);
        assert!(!report.primary_intact);
        assert!(report.primary_error.is_some());
        assert!(system.primary().is_none());
        answer_all(&system.with_view(view.clone()), &queries)
    };
    assert_eq!(counts.exact, queries.len(), "{counts}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bitflipped_table_block_salvages_to_degraded_primary() {
    let view = sales_view(4000);
    let dir = scoped_dir("bitflip");
    let path = dir.join("family.aqps");
    build_and_save(&view, &path);
    let queries = workload(&view);

    // Aim the flip inside the first embedded small-group table so exactly
    // one unit is lost and the rest of the family salvages.
    let bytes = std::fs::read(&path).expect("read family");
    let offset = nth_table_offset(&bytes, 0) + 20;

    let dir2 = dir.clone();
    let (counts, disabled) = {
        let _g =
            fault::install(FaultPlan::new(Fault::BitFlip(offset)).for_paths("aqp_resil_bitflip"));
        let (system, report) = ResilientSystem::open(&path);
        assert!(!report.primary_intact);
        assert!(
            !report.disabled_units.is_empty(),
            "flip at {offset} must disable a unit: {:?}",
            report.primary_error
        );
        let system = system.with_view(view.clone());

        // A query grouping on the lost column is served degraded: the
        // overall sample covers its rows instead of the dead table.
        let lost = report.disabled_units[0].clone();
        let q = Query::builder().count().group_by(&lost).build().expect("query");
        let ans = system.answer(&q, 0.95).expect("degraded answer");
        assert_eq!(ans.tier, ServingTier::DegradedPrimary, "grouping on {lost}");

        (answer_all(&system, &queries), report.disabled_units)
    };
    assert_eq!(counts.total(), queries.len());
    assert!(
        counts.primary + counts.degraded == queries.len(),
        "salvaged family still serves the sampler tiers: {counts} (lost {disabled:?})"
    );
    std::fs::remove_dir_all(&dir2).ok();
}

#[test]
fn truncated_file_degrades_to_exact_tier() {
    let view = sales_view(4000);
    let dir = scoped_dir("trunc");
    let path = dir.join("family.aqps");
    build_and_save(&view, &path);
    let queries = workload(&view);

    let counts = {
        let _g = fault::install(FaultPlan::new(Fault::TruncateAt(64)).for_paths("aqp_resil_trunc"));
        let (system, report) = ResilientSystem::open(&path);
        assert!(!report.primary_intact);
        assert!(system.primary().is_none(), "64 bytes cannot salvage");
        answer_all(&system.with_view(view.clone()), &queries)
    };
    assert_eq!(counts.exact, queries.len(), "{counts}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn transient_read_error_recovers_at_full_strength() {
    let view = sales_view(4000);
    let dir = scoped_dir("readerr");
    let path = dir.join("family.aqps");
    build_and_save(&view, &path);
    let queries = workload(&view);

    let counts = {
        let _g = fault::install(
            FaultPlan::new(Fault::ReadErr { nth: 0 }).for_paths("aqp_resil_readerr"),
        );
        // The first read fails; the salvage retry succeeds and finds every
        // checksum intact, so the family serves at full strength.
        let (system, report) = ResilientSystem::open(&path);
        assert!(!report.primary_intact, "first read did fail");
        assert!(report.disabled_units.is_empty());
        assert!(system.primary().is_some(), "salvage retry recovered the family");
        answer_all(&system.with_view(view.clone()), &queries)
    };
    assert_eq!(counts.primary, queries.len(), "{counts}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_write_preserves_previous_generation() {
    let view = sales_view(4000);
    let dir = scoped_dir("tornwrite");
    let path = dir.join("family.aqps");
    let sampler = build_and_save(&view, &path);
    let before = std::fs::read(&path).expect("generation 1");

    {
        let _g = fault::install(
            FaultPlan::new(Fault::WriteErr { nth: 0 }).for_paths("aqp_resil_tornwrite"),
        );
        let err = sampler.save(&path).expect_err("injected torn write");
        assert!(matches!(err, AqpError::Io(_)), "{err}");
    }
    // Atomic temp-then-rename: the destination still holds generation 1.
    assert_eq!(std::fs::read(&path).expect("still readable"), before);
    let (system, report) = ResilientSystem::open(&path);
    assert!(report.primary_intact);
    let q = Query::builder().count().group_by("store.region").build().expect("query");
    assert_eq!(system.answer(&q, 0.95).expect("answer").tier, ServingTier::Primary);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn row_budget_walks_down_the_ladder() {
    let view = sales_view(4000);
    let dir = scoped_dir("budget");
    let path = dir.join("family.aqps");
    let sampler = build_and_save(&view, &path);
    let queries = workload(&view);
    let overall_rows = sampler.catalog().overall_rows;

    // Budget = overall sample size: group-by queries step down from the
    // primary plan (overall + sg tables) to the overall-only rung.
    let (system, report) = ResilientSystem::open(&path);
    assert!(report.primary_intact);
    let system = system.with_view(view.clone()).with_row_budget(overall_rows);
    let counts = answer_all(&system, &queries);
    assert!(counts.overall > 0, "{counts}");

    // Budget below even the overall sample, with a view attached: the
    // budget-capped exact scan serves and flags the answers partial.
    let system = ResilientSystem::exact_only(view.clone()).with_row_budget(overall_rows / 2);
    let counts = answer_all(&system, &queries);
    assert_eq!(counts.exact, queries.len(), "{counts}");
    assert_eq!(counts.partial, queries.len(), "{counts}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn min_max_only_served_by_exact_tier() {
    let view = sales_view(4000);
    let sampler = SmallGroupSampler::build(&view, SmallGroupConfig::with_rates(0.05, 0.5))
        .expect("preprocessing");
    let q = Query::builder()
        .aggregate(AggExpr::min("sales.revenue", "mn"))
        .aggregate(AggExpr::max("sales.revenue", "mx"))
        .build()
        .expect("query");

    let system = ResilientSystem::from_sampler(sampler.clone()).with_view(view.clone());
    let ans = system.answer(&q, 0.95).expect("min/max answer");
    assert_eq!(ans.tier, ServingTier::Exact);
    assert!(ans.groups[0].values[0].is_exact());

    let system = ResilientSystem::from_sampler(sampler);
    assert!(
        matches!(system.answer(&q, 0.95), Err(AqpError::Unsupported(_))),
        "no view: MIN/MAX has no serving tier"
    );
}

/// The CI fault-matrix entry point: `AQP_FAULTS=<spec>:envfault` injects
/// one fault class for the whole process; with or without it, every
/// workload query must be answered and tagged — zero panics.
#[test]
fn env_fault_matrix_still_answers_everything() {
    let view = sales_view(4000);
    let dir = scoped_dir("envfault");
    let path = dir.join("family.aqps");
    let sampler = SmallGroupSampler::build(&view, SmallGroupConfig::with_rates(0.05, 0.5))
        .expect("preprocessing");
    // Under write faults the save itself may fail; the ladder must absorb
    // that exactly like a missing file.
    let saved = sampler.save(&path);
    let queries = workload(&view);

    let (system, report) = ResilientSystem::open(&path);
    let system = system.with_view(view.clone());
    let counts = answer_all(&system, &queries);

    match fault::env_plan() {
        Some(plan) => {
            assert!(
                saved.is_err() || !report.primary_intact,
                "injected fault {plan:?} must be observed (saved: {saved:?})"
            );
            let transient_read = matches!(plan.fault, Fault::ReadErr { .. });
            assert!(
                counts.degraded_total() > 0 || transient_read,
                "fault {plan:?} must push answers below the primary tier: {counts}"
            );
        }
        None => {
            assert!(report.primary_intact, "healthy run: {report:?}");
            assert_eq!(counts.primary, queries.len(), "{counts}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
