//! Property tests for the vectorised scan kernels.
//!
//! Random tables (dictionary, boolean, integer, and float columns, each
//! with NULLs), random predicates over every compiled kernel form, and
//! random group-by subsets are executed three ways:
//!
//! 1. the **scalar** reference loop (`KernelMode::Scalar`),
//! 2. the **vectorised** kernels (`KernelMode::Vectorized`) — which,
//!    depending on the drawn group-by, take the dense group-id path, the
//!    hash path, or the ungrouped path,
//! 3. a naive row-at-a-time evaluator written here, independent of the
//!    executor (selection by a plain `bool` per row, tallies by
//!    `AggState::update` in row order).
//!
//! Scalar vs vectorised must agree *bit-for-bit*, group order included —
//! that is the determinism contract. The naive evaluator pins both to
//! ground truth: measures are small integers, so sums are exact and even
//! the order-sensitive tally fields must match to the last bit (the
//! naive loop feeds `update` in ascending row order, exactly the order
//! the contract promises).

use aqp::prelude::*;
use aqp::query::AggState;
use proptest::prelude::*;
use std::collections::HashMap;

const CATS: [&str; 5] = ["alpha", "beta", "gamma", "delta", "epsilon"];

/// One generated row: dict group, bool group, int group, int measure,
/// float measure. `None` encodes NULL.
#[derive(Debug, Clone)]
struct Row {
    g: Option<usize>,
    b: Option<bool>,
    k: Option<i64>,
    x: Option<i64>,
    y: Option<i64>,
}

/// Turn a raw draw into `None` with probability ~3/20 (the vendored
/// proptest has no `option` module, so NULLs are coded by hand).
fn opt<T>(null_draw: u32, v: T) -> Option<T> {
    (null_draw >= 3).then_some(v)
}

fn rows() -> impl Strategy<Value = Vec<Row>> {
    collection::vec(
        (
            (0u32..20, 0usize..CATS.len()),
            (0u32..20, 0u32..2),
            (0u32..20, -4i64..4),
            (0u32..20, -50i64..50),
            (0u32..20, 0i64..40),
        )
            .prop_map(|(g, b, k, x, y)| Row {
                g: opt(g.0, g.1),
                b: opt(b.0, b.1 == 0),
                k: opt(k.0, k.1),
                x: opt(x.0, x.1),
                y: opt(y.0, y.1),
            }),
        1..200,
    )
}

/// Predicate shapes covering every compiled kernel: dictionary IN-list,
/// integer compare, float compare, and an AND/OR/NOT combination.
#[derive(Debug, Clone, Copy)]
enum PredKind {
    None,
    DictIn,
    IntCmp,
    FloatCmp,
    Combo,
}

fn pred_kind() -> impl Strategy<Value = PredKind> {
    (0usize..5).prop_map(|i| {
        [
            PredKind::None,
            PredKind::DictIn,
            PredKind::IntCmp,
            PredKind::FloatCmp,
            PredKind::Combo,
        ][i]
    })
}

fn build_pred(kind: PredKind) -> Option<Expr> {
    match kind {
        PredKind::None => None,
        PredKind::DictIn => Some(Expr::in_set("g", vec!["alpha".into(), "gamma".into()])),
        PredKind::IntCmp => Some(Expr::cmp("k", CmpOp::Ge, 0i64)),
        PredKind::FloatCmp => Some(Expr::cmp("y", CmpOp::Lt, 20.0f64)),
        PredKind::Combo => Some(Expr::Or(vec![
            Expr::And(vec![
                Expr::cmp("x", CmpOp::Gt, 0i64),
                Expr::Not(Box::new(Expr::in_set("g", vec!["beta".into()]))),
            ]),
            Expr::cmp("y", CmpOp::Le, 5.0f64),
        ])),
    }
}

/// Naive per-row predicate matching the executor's NULL-is-false leaves.
fn naive_pred(kind: PredKind, r: &Row) -> bool {
    match kind {
        PredKind::None => true,
        PredKind::DictIn => r.g.is_some_and(|g| CATS[g] == "alpha" || CATS[g] == "gamma"),
        PredKind::IntCmp => r.k.is_some_and(|k| k >= 0),
        PredKind::FloatCmp => r.y.is_some_and(|y| (y as f64) < 20.0),
        PredKind::Combo => {
            let left = r.x.is_some_and(|x| x > 0) && r.g.is_none_or(|g| CATS[g] != "beta");
            let right = r.y.is_some_and(|y| (y as f64) <= 5.0);
            left || right
        }
    }
}

/// Group-by subsets: ungrouped, all-dict/bool (dense path), and mixes
/// that include the integer column (hash path).
fn group_sets() -> impl Strategy<Value = Vec<&'static str>> {
    (0usize..6).prop_map(|i| {
        [
            vec![],
            vec!["g"],
            vec!["g", "b"],
            vec!["k"],
            vec!["g", "k"],
            vec!["b", "k", "g"],
        ][i]
        .clone()
    })
}

fn to_table(rows: &[Row]) -> Table {
    let schema = SchemaBuilder::new()
        .field("g", DataType::Utf8)
        .field("b", DataType::Bool)
        .field("k", DataType::Int64)
        .field("x", DataType::Int64)
        .field("y", DataType::Float64)
        .build()
        .unwrap();
    let mut t = Table::empty("t", schema);
    let val = |o: Option<Value>| o.unwrap_or(Value::Null);
    for r in rows {
        t.push_row(&[
            val(r.g.map(|g| CATS[g].into())),
            val(r.b.map(Value::Bool)),
            val(r.k.map(Value::Int64)),
            val(r.x.map(Value::Int64)),
            val(r.y.map(|y| Value::Float64(y as f64))),
        ])
        .unwrap();
    }
    t
}

/// Naive evaluation: filter with [`naive_pred`], group into a map keyed
/// by the owned key values, and feed [`AggState::update`] in row order —
/// the exact sequence the executor promises for both kernel modes.
fn naive(rows: &[Row], kind: PredKind, groups: &[&str]) -> HashMap<Vec<Value>, [AggState; 3]> {
    let mut out: HashMap<Vec<Value>, [AggState; 3]> = HashMap::new();
    for r in rows.iter().filter(|r| naive_pred(kind, r)) {
        let key: Vec<Value> = groups
            .iter()
            .map(|&g| match g {
                "g" => r.g.map_or(Value::Null, |g| CATS[g].into()),
                "b" => r.b.map_or(Value::Null, Value::Bool),
                _ => r.k.map_or(Value::Null, Value::Int64),
            })
            .collect();
        let states = out.entry(key).or_default();
        states[0].update(1.0, 1.0);
        if let Some(x) = r.x {
            states[1].update(x as f64, 1.0);
        }
        if let Some(y) = r.y {
            states[2].update(y as f64, 1.0);
        }
    }
    if groups.is_empty() && out.is_empty() {
        out.insert(Vec::new(), Default::default());
    }
    out
}

fn bits_equal(a: &AggState, b: &AggState) -> bool {
    a.rows == b.rows
        && a.sum_w.to_bits() == b.sum_w.to_bits()
        && a.sum_wx.to_bits() == b.sum_wx.to_bits()
        && a.sum_x.to_bits() == b.sum_x.to_bits()
        && a.sum_x_sq.to_bits() == b.sum_x_sq.to_bits()
        && a.var_acc.to_bits() == b.var_acc.to_bits()
        && a.var_acc_w.to_bits() == b.var_acc_w.to_bits()
        && a.cov_acc.to_bits() == b.cov_acc.to_bits()
        && a.min.to_bits() == b.min.to_bits()
        && a.max.to_bits() == b.max.to_bits()
}

fn run(
    table: &Table,
    q: &Query,
    kernels: KernelMode,
    threads: usize,
    morsel_rows: usize,
) -> aqp::query::QueryOutput {
    let opts = ExecOptions {
        parallelism: threads,
        morsel_rows,
        kernels,
        ..ExecOptions::default()
    };
    aqp::query::execute(&DataSource::Wide(table), q, &opts).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kernels_match_scalar_and_naive_reference(
        rows in rows(),
        kind in pred_kind(),
        groups in group_sets(),
        threads in 1usize..4,
        morsel_rows in (0usize..3).prop_map(|i| [7usize, 64, 1024][i]),
    ) {
        let table = to_table(&rows);
        let mut b = Query::builder()
            .count()
            .sum("x")
            .aggregate(AggExpr::avg("y", "avg_y"));
        for &g in &groups {
            b = b.group_by(g);
        }
        if let Some(p) = build_pred(kind) {
            b = b.filter(p);
        }
        let q = b.build().unwrap();

        let scalar = run(&table, &q, KernelMode::Scalar, threads, morsel_rows);
        let vect = run(&table, &q, KernelMode::Vectorized, threads, morsel_rows);

        // Scalar vs vectorised: bit-identical, group order included.
        prop_assert_eq!(scalar.num_groups(), vect.num_groups());
        for (a, b) in scalar.groups.iter().zip(&vect.groups) {
            prop_assert_eq!(&a.key, &b.key, "group order diverged");
            for (sa, sb) in a.aggs.iter().zip(&b.aggs) {
                prop_assert!(bits_equal(sa, sb), "tally diverged at key {:?}: {:?} vs {:?}", a.key, sa, sb);
            }
        }

        // Vectorised vs the naive row loop: exact ground truth (integer
        // measures make every float tally exactly representable).
        let truth = naive(&rows, kind, &groups);
        prop_assert_eq!(vect.num_groups(), truth.len(), "group count vs naive");
        for g in &vect.groups {
            let want = truth.get(&g.key);
            prop_assert!(want.is_some(), "spurious group {:?}", g.key);
            for (sa, sb) in g.aggs.iter().zip(want.unwrap()) {
                prop_assert!(bits_equal(sa, sb), "naive mismatch at key {:?}: {:?} vs {:?}", g.key, sa, sb);
            }
        }
    }
}
