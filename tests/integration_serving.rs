//! Integration tests for the concurrent query server: overload soak,
//! deadline-driven degradation on the wire, forced timeouts via fault
//! injection, and graceful drain under load.
//!
//! The acceptance contract (mirrors the serving design doc):
//! at 2x the admission cap the server sheds deterministically, nothing
//! panics, every request receives exactly one terminal response
//! (answer / shed / timeout), the observability counters reconcile with
//! the request total, and a deadline-bounded query comes back as a
//! degraded-tier answer rather than a missed deadline.

use aqp::prelude::*;
use aqp::serving::{
    fault, AdmissionConfig, CacheConfig, ClassLimits, Client, ClientError, ContractClass,
    Request, Response, RetryPolicy, Server, ServerConfig, ServingFault,
};
use std::time::Duration;

fn sales_view(rows: usize) -> Table {
    let star = gen_sales(&SalesConfig { fact_rows: rows, zipf_z: 1.5, seed: 42 }).unwrap();
    star.denormalize("view").unwrap()
}

fn start_server(
    system: ResilientSystem,
    config: ServerConfig,
) -> (
    String,
    aqp::serving::ShutdownHandle,
    std::thread::JoinHandle<std::io::Result<aqp::serving::ServerReport>>,
) {
    let server = Server::bind(system, config).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

const SQL: &str = "SELECT store.region, COUNT(*) AS cnt, SUM(sales.revenue) AS rev \
                   FROM v GROUP BY store.region";

#[test]
fn soak_overload_every_request_gets_exactly_one_terminal_response() {
    let cap = ClassLimits { max_inflight: 2, max_queue: 2 };
    let clients = 2 * (cap.max_inflight + cap.max_queue); // 2x admission capacity
    let per_client = 5usize;
    let config = ServerConfig {
        admission: AdmissionConfig { interactive: cap, batch: cap },
        // Cache off: the soak measures admission control, and with the
        // cache on a single leader would execute while every identical
        // request coalesced behind it instead of being shed.
        cache: CacheConfig::disabled(),
        ..ServerConfig::default()
    };
    let before = aqp::obs::global().snapshot();
    let (addr, handle, join) = start_server(
        ResilientSystem::exact_only(sales_view(20_000)).with_threads(2),
        config,
    );

    // Each worker sends its requests with no client-side retry, so every
    // wire-level outcome is counted exactly once.
    let outcomes: Vec<&'static str> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                let addr = addr.clone();
                s.spawn(move || {
                    let mut client = Client::new(addr, RetryPolicy::no_retry());
                    let mut seen = Vec::with_capacity(per_client);
                    for _ in 0..per_client {
                        let outcome = match client.request(&Request::Query {
                            sql: SQL.into(),
                            class: ContractClass::Interactive,
                            deadline_ms: None,
                            row_budget: None,
                            confidence: None,
                            max_rel_error: None,
                            trace_id: None,
                        }) {
                            Ok(Response::Answer(_)) => "answered",
                            Ok(Response::Timeout { .. }) => "timeout",
                            Ok(Response::Error { .. }) => "error",
                            Ok(other) => panic!("unexpected response for client {c}: {other:?}"),
                            Err(ClientError::Shed { .. }) => "shed",
                            Err(e) => panic!("transport failure for client {c}: {e}"),
                        };
                        seen.push(outcome);
                    }
                    seen
                })
            })
            .collect();
        workers.into_iter().flat_map(|w| w.join().expect("client thread panicked")).collect()
    });
    handle.shutdown();
    let report = join.join().expect("server thread panicked").unwrap();

    // Exactly one terminal response per request, and under 2x overload
    // with no-retry clients at least one request must have been shed.
    let total_requests = clients * per_client;
    assert_eq!(outcomes.len(), total_requests);
    let count = |k: &str| outcomes.iter().filter(|o| **o == k).count();
    let (answered, shed, timeout, error) =
        (count("answered"), count("shed"), count("timeout"), count("error"));
    assert_eq!(answered + shed + timeout + error, total_requests);
    assert!(shed > 0, "2x overload with a bounded queue must shed");
    assert!(answered > 0, "admitted requests still get answers under overload");
    assert_eq!(error, 0, "no parse or execution errors in the soak");

    // The server's own report and the obs counters both reconcile.
    assert_eq!(report.requests as usize, total_requests);
    assert_eq!(report.answered as usize, answered);
    assert_eq!(report.shed as usize, shed);
    assert_eq!(report.timeouts as usize, timeout);
    let after = aqp::obs::global().snapshot();
    let delta = |name: &str| {
        after.counter_total(name).saturating_sub(before.counter_total(name)) as usize
    };
    assert_eq!(delta("aqp_server_requests_total"), total_requests);
    assert_eq!(delta("aqp_server_shed_total"), shed);
    assert_eq!(
        delta("aqp_server_admitted_total"),
        answered + timeout,
        "every non-shed request passed admission exactly once"
    );
}

#[test]
fn deadline_bounded_query_degrades_instead_of_missing() {
    // Pin throughput to 1 row/ms: a 150ms deadline converts to a ~120-row
    // budget against a 20k-row view, so the exact tier truncates — the
    // client gets a deadline-shaped answer, not a timeout.
    let config = ServerConfig {
        fixed_rows_per_ms: Some(1.0),
        ..ServerConfig::default()
    };
    let (addr, handle, join) = start_server(
        ResilientSystem::exact_only(sales_view(20_000)).with_threads(2),
        config,
    );
    let mut client = Client::new(addr, RetryPolicy::no_retry());
    match client
        .request(&Request::Query {
            sql: SQL.into(),
            class: ContractClass::Interactive,
            deadline_ms: Some(150),
            row_budget: None,
            confidence: None,
            max_rel_error: None,
            trace_id: None,
        })
        .unwrap()
    {
        Response::Answer(a) => {
            assert_eq!(a.tier, "exact");
            assert!(a.deadline_limited, "the deadline shaped this answer: {a:?}");
            assert!(a.partial, "scan was truncated to fit the deadline");
            assert!(
                a.rows_scanned < 20_000,
                "budget-capped scan, saw {} rows",
                a.rows_scanned
            );
        }
        other => panic!("expected a degraded answer, got {other:?}"),
    }
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn exec_stall_fault_forces_deterministic_timeout() {
    // exec-stall@0 blocks the first execution until its deadline token
    // trips — the CI recipe for a machine-speed-independent timeout.
    let _guard = fault::install(vec![ServingFault::ExecStall { nth: 0 }]);
    let before = aqp::obs::global().snapshot();
    let (addr, handle, join) = start_server(
        ResilientSystem::exact_only(sales_view(5_000)).with_threads(2),
        ServerConfig::default(),
    );
    let mut client = Client::new(addr, RetryPolicy::no_retry());
    match client
        .request(&Request::Query {
            sql: SQL.into(),
            class: ContractClass::Interactive,
            deadline_ms: Some(150),
            row_budget: None,
            confidence: None,
            max_rel_error: None,
            trace_id: None,
        })
        .unwrap()
    {
        Response::Timeout { .. } => {}
        other => panic!("expected timeout, got {other:?}"),
    }
    // The stall fires once; the next query is healthy.
    match client.request(&Request::query(SQL)).unwrap() {
        Response::Answer(a) => assert_eq!(a.tier, "exact"),
        other => panic!("expected answer after the stall, got {other:?}"),
    }
    handle.shutdown();
    let report = join.join().unwrap().unwrap();
    assert_eq!(report.timeouts, 1);
    assert_eq!(report.answered, 1);
    let after = aqp::obs::global().snapshot();
    let fired = after
        .counter_value("aqp_fault_injected_total", &[("kind", "exec-stall")])
        .unwrap_or(0)
        - before
            .counter_value("aqp_fault_injected_total", &[("kind", "exec-stall")])
            .unwrap_or(0);
    assert_eq!(fired, 1, "the injected stall was recorded");
}

#[test]
fn serving_faults_parse_from_shared_spec_grammar() {
    // The AQP_FAULTS grammar is shared with the storage layer: serving
    // kinds parse here, storage kinds are ignored here (and vice versa).
    assert_eq!(fault::parse_spec("accept-drop@3"), Some(ServingFault::AcceptDrop { nth: 3 }));
    assert_eq!(fault::parse_spec("exec-stall@0"), Some(ServingFault::ExecStall { nth: 0 }));
    assert_eq!(fault::parse_spec("bitflip@700:family"), None);
    assert_eq!(fault::parse_spec("read-err:catalog"), None);
}

#[test]
fn graceful_drain_finishes_inflight_and_rejects_new() {
    let (addr, handle, join) = start_server(
        ResilientSystem::exact_only(sales_view(20_000)).with_threads(2),
        ServerConfig::default(),
    );
    // One client keeps a connection open across the drain boundary.
    let mut open_client = Client::new(addr.clone(), RetryPolicy::no_retry());
    match open_client.request(&Request::query(SQL)).unwrap() {
        Response::Answer(_) => {}
        other => panic!("{other:?}"),
    }
    handle.shutdown();
    std::thread::sleep(Duration::from_millis(200));
    // After the drain begins the same connection gets a draining frame
    // (or a clean close if the worker already exited) — never a hang.
    match open_client.request(&Request::query(SQL)) {
        Ok(Response::Draining) | Err(ClientError::Io(_)) => {}
        other => panic!("expected draining/closed, got {other:?}"),
    }
    let report = join.join().unwrap().unwrap();
    assert!(report.answered >= 1);
}

#[test]
fn deadline_tier_fallback_reason_reaches_metrics() {
    // A deadline that forces the ladder below the viable tier is tallied
    // as aqp_tier_fallback_total{reason="deadline"} — distinct from
    // budget- and degradation-driven fallbacks. Exercised end-to-end
    // through the server so the wire and the metric agree. The system
    // needs a real sample ladder here: step-downs are tallied when a
    // rung is *skipped*, and an exact-only system has no rungs to skip.
    let before = aqp::obs::global()
        .snapshot()
        .counter_value("aqp_tier_fallback_total", &[("reason", "deadline")])
        .unwrap_or(0);
    let view = sales_view(20_000);
    let sampler = SmallGroupSampler::build(&view, SmallGroupConfig::with_rates(0.05, 0.5))
        .expect("preprocessing");
    let (addr, handle, join) = start_server(
        ResilientSystem::from_sampler(sampler).with_view(view).with_threads(2),
        ServerConfig {
            fixed_rows_per_ms: Some(1.0),
            ..ServerConfig::default()
        },
    );
    let mut client = Client::new(addr, RetryPolicy::no_retry());
    match client
        .request(&Request::Query {
            sql: SQL.into(),
            class: ContractClass::Interactive,
            deadline_ms: Some(150),
            row_budget: None,
            confidence: None,
            max_rel_error: None,
            trace_id: None,
        })
        .unwrap()
    {
        Response::Answer(a) => assert!(a.deadline_limited),
        other => panic!("{other:?}"),
    }
    handle.shutdown();
    join.join().unwrap().unwrap();
    let after = aqp::obs::global()
        .snapshot()
        .counter_value("aqp_tier_fallback_total", &[("reason", "deadline")])
        .unwrap_or(0);
    assert!(after > before, "deadline fallback reason was recorded ({before} -> {after})");
}

/// Satellite: 16 clients hammer an overlapping set of distinct queries.
/// Single-flight means each distinct canonical key executes exactly once
/// (everything else is served from cache), every request still gets one
/// terminal response, and the server's hit/miss/bypass tallies reconcile
/// with the request total.
#[test]
fn cache_soak_sixteen_clients_execute_each_distinct_key_once() {
    // Distinct plans: same shape, different predicate literal. Clients
    // also format them differently (whitespace/alias noise) — the
    // canonical key must see through that.
    let thresholds = [100.0f64, 200.0, 300.0, 400.0, 500.0, 600.0];
    let queries: Vec<String> = thresholds
        .iter()
        .enumerate()
        .flat_map(|(i, t)| {
            [
                format!(
                    "SELECT store.region, COUNT(*) AS cnt{i} FROM v \
                     WHERE sales.revenue > {t} GROUP BY store.region"
                ),
                // Same plan, noisy surface syntax: alias renamed, spacing
                // mangled, float formatted differently.
                format!(
                    "select   store.region ,  count(*) as other_name \
                     from v where sales.revenue > {t}.000 group by store.region"
                ),
            ]
        })
        .collect();
    let distinct_keys = thresholds.len();

    let config = ServerConfig {
        admission: AdmissionConfig {
            interactive: ClassLimits { max_inflight: 16, max_queue: 64 },
            batch: ClassLimits { max_inflight: 2, max_queue: 2 },
        },
        ..ServerConfig::default()
    };
    let (addr, handle, join) = start_server(
        ResilientSystem::exact_only(sales_view(20_000)).with_threads(2),
        config,
    );

    let clients = 16usize;
    let outcomes: Vec<&'static str> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                let addr = addr.clone();
                let queries = &queries;
                s.spawn(move || {
                    let mut client = Client::new(addr, RetryPolicy::no_retry());
                    let mut seen = Vec::with_capacity(queries.len());
                    // Rotate the schedule per client so different keys
                    // are in flight simultaneously.
                    for k in 0..queries.len() {
                        let sql = &queries[(k + c) % queries.len()];
                        let outcome = match client.request(&Request::query(sql.clone())) {
                            Ok(Response::Answer(a)) => {
                                if a.cache_hit {
                                    "hit"
                                } else {
                                    "miss"
                                }
                            }
                            Ok(other) => panic!("client {c}: unexpected response {other:?}"),
                            Err(e) => panic!("client {c}: transport failure {e}"),
                        };
                        seen.push(outcome);
                    }
                    seen
                })
            })
            .collect();
        workers.into_iter().flat_map(|w| w.join().expect("client panicked")).collect()
    });
    handle.shutdown();
    let report = join.join().expect("server panicked").unwrap();

    let total = clients * queries.len();
    assert_eq!(outcomes.len(), total, "every request got exactly one terminal response");
    let wire_hits = outcomes.iter().filter(|o| **o == "hit").count();
    let wire_misses = outcomes.iter().filter(|o| **o == "miss").count();
    assert_eq!(wire_hits + wire_misses, total);

    // Exactly one execution per distinct canonical key: every miss is an
    // execution, and only the first request for each key may miss.
    assert_eq!(
        report.cache_misses as usize, distinct_keys,
        "single-flight: one execution per distinct key"
    );
    assert_eq!(report.cache_hits as usize, total - distinct_keys);
    assert_eq!(report.cache_bypass, 0);
    assert_eq!(report.cache_misses as usize, wire_misses, "wire flags agree with tallies");
    assert_eq!(report.answered as usize, total);
    assert_eq!(
        (report.cache_hits + report.cache_misses + report.cache_bypass) as usize,
        report.answered as usize,
        "hit + miss + bypass covers every answered query"
    );
}

/// Differential oracle: over a 240-query seeded workload (interleaved
/// shapes and confidence levels, including a mid-run table rebuild with
/// explicit invalidation), the cache-on path must return answers with
/// exactly the group keys and point estimates the cache-off path
/// computes, and every served answer must satisfy the request's
/// contract. A stale post-rebuild reuse, an alias/key mix-up, or a
/// contract-violating hit all surface as hard mismatches.
#[test]
fn differential_oracle_cache_on_matches_cache_off_across_rebuild() {
    use aqp::serving::{CacheDecision, SemanticCache};

    let build = |seed: u64| -> ResilientSystem {
        let star = gen_sales(&SalesConfig { fact_rows: 8_000, zipf_z: 1.5, seed }).unwrap();
        let view = star.denormalize("view").unwrap();
        let sampler =
            SmallGroupSampler::build(&view, SmallGroupConfig::with_rates(0.05, 0.5)).unwrap();
        ResilientSystem::from_sampler(sampler).with_view(view).with_threads(2)
    };
    let system_a = build(42);
    let system_b = build(777); // the "rebuilt" table: different data
    let cache = SemanticCache::new(CacheConfig::default());

    // ~30 shapes: group column x aggregate x predicate threshold.
    let groups = ["store.region", "product.category", "customer.segment"];
    let aggs = ["COUNT(*) AS c", "SUM(sales.revenue) AS r", "COUNT(*) AS c, SUM(sales.units) AS u"];
    let preds = ["", "WHERE sales.revenue > 100 ", "WHERE sales.units >= 2 "];
    let mut shapes = Vec::new();
    for g in &groups {
        for a in &aggs {
            for p in &preds {
                shapes.push(format!("SELECT {g}, {a} FROM v {p}GROUP BY {g}"));
            }
        }
    }
    let confidences = [0.90, 0.95, 0.99];

    let mut rng: u64 = 0x07ac1e ^ 0xD1FF;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };

    let mut hits = 0usize;
    let mut system = &system_a;
    for i in 0..240 {
        // Mid-run rebuild: swap the data out from under the cache and
        // invalidate. Any stale reuse after this point returns seed-42
        // estimates against the seed-777 oracle and fails the compare.
        if i == 120 {
            system = &system_b;
            cache.invalidate();
        }
        let sql = &shapes[(next() as usize) % shapes.len()];
        let confidence = confidences[(next() as usize) % confidences.len()];
        let contract = AnswerContract::at_confidence(confidence);
        let parsed = parse_query(sql).unwrap();

        // Oracle: always execute fresh.
        let oracle = system
            .answer_bounded(&parsed.query, confidence, &QueryBound::none())
            .unwrap()
            .answer;

        // Cache path: the server's logic in miniature.
        let (served, served_conf) =
            match cache.decide(&parsed.table, &parsed.query, &contract, None) {
                CacheDecision::Hit(a, conf) => {
                    hits += 1;
                    (*a, conf)
                }
                CacheDecision::Execute(guard) => {
                    let bounded = system
                        .answer_bounded(&parsed.query, confidence, &QueryBound::none())
                        .unwrap();
                    guard.complete(&bounded.answer, confidence, !bounded.deadline_limited);
                    (bounded.answer, confidence)
                }
                CacheDecision::Bypass => panic!("cache is enabled"),
            };

        // Same groups, bitwise-identical point estimates, same aliases.
        assert_eq!(served.group_names, oracle.group_names, "query {i}: {sql}");
        assert_eq!(served.agg_aliases, oracle.agg_aliases, "query {i}: {sql}");
        let mut served_sorted = served.clone();
        served_sorted.sort_by_key();
        let mut oracle_sorted = oracle.clone();
        oracle_sorted.sort_by_key();
        assert_eq!(served_sorted.groups.len(), oracle_sorted.groups.len(), "query {i}: {sql}");
        for (gs, go) in served_sorted.groups.iter().zip(&oracle_sorted.groups) {
            assert_eq!(gs.key, go.key, "query {i}: {sql}");
            for (vs, vo) in gs.values.iter().zip(&go.values) {
                assert_eq!(
                    vs.value().to_bits(),
                    vo.value().to_bits(),
                    "query {i}: estimate drifted through the cache: {sql}"
                );
            }
        }
        // Every served answer honours the contract it was served under.
        assert!(
            contract.satisfied_by(&served, served_conf),
            "query {i}: served answer violates its contract: {sql}"
        );
    }
    assert!(hits > 60, "workload repeats shapes, so the cache must get real use ({hits} hits)");
}
