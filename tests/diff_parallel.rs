//! Differential oracle for morsel-driven parallel execution.
//!
//! Two independent checks, combined across aggregate types, group-by
//! arities (including past the fast-key limit), NULLs and predicates:
//!
//! 1. **Determinism** — answers at 2/4/8 threads are *bit-identical* to
//!    the 1-thread answer, for the exact executor and for the UNION-ALL
//!    rewrite plan served by [`SmallGroupSampler`]. Morsel boundaries and
//!    the merge order of partial states depend only on the row count, so
//!    scheduling can never leak into results.
//! 2. **Correctness** — the exact executor's parallel answers equal a
//!    naive row-at-a-time reference evaluator written independently of
//!    the morsel machinery (integer-valued measures compare exactly;
//!    fractional sums within a tight relative tolerance, since a straight
//!    left-to-right float sum legitimately rounds differently from the
//!    morsel-ordered fold).

use aqp::prelude::*;
use aqp::query::plan::QueryBuilder;
use aqp::query::AggState;
use std::collections::HashMap;

/// Deterministic splitmix-style generator: no rand dependency, stable
/// across platforms.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    let z = *state ^ (*state >> 31);
    z.wrapping_mul(0x9e3779b97f4a7c15) >> 17
}

/// Mixed-type table with NULLs in a group column and both measures.
/// `c0..c6` provide a 7-column grouping set that exceeds the executor's
/// compact-key width and exercises the heap-key fallback.
fn test_table(rows: usize, seed: u64) -> Table {
    let mut b = SchemaBuilder::new()
        .field("cat", DataType::Utf8)
        .field("sub", DataType::Int64);
    for i in 0..7 {
        b = b.field(format!("c{i}"), DataType::Int64);
    }
    let schema = b
        .field("val", DataType::Float64)
        .field("amt", DataType::Float64)
        .build()
        .unwrap();
    let mut t = Table::empty("t", schema);
    let mut s = seed.wrapping_mul(0x517cc1b727220a95).wrapping_add(1);
    let cats = ["a", "b", "c", "d"];
    for _ in 0..rows {
        let mut row: Vec<Value> = Vec::with_capacity(11);
        row.push(if next(&mut s).is_multiple_of(10) {
            Value::Null
        } else {
            cats[(next(&mut s) % 4) as usize].into()
        });
        row.push(((next(&mut s) % 5) as i64).into());
        for i in 0..7u64 {
            row.push(((next(&mut s) % (i + 2)) as i64).into());
        }
        // Fractional measure: sums depend on accumulation order in the
        // low bits. Integer-valued measure: sums are exact at any order.
        row.push(if next(&mut s).is_multiple_of(8) {
            Value::Null
        } else {
            (0.01 + (next(&mut s) % 13) as f64 / 7.0).into()
        });
        row.push(if next(&mut s).is_multiple_of(9) {
            Value::Null
        } else {
            ((next(&mut s) % 101) as f64).into()
        });
        t.push_row(&row).unwrap();
    }
    t
}

/// Naive reference tally for one aggregate over one group.
#[derive(Clone, Default)]
struct RefAgg {
    rows: u64,
    non_null: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// Row-at-a-time reference evaluator: no morsels, no hashing tricks —
/// a `Vec<Value>` per row and a linear predicate walk.
fn reference(
    table: &Table,
    query: &Query,
) -> HashMap<Vec<Value>, Vec<RefAgg>> {
    let idx: HashMap<&str, usize> = table
        .schema()
        .fields()
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.as_str(), i))
        .collect();
    let mut out: HashMap<Vec<Value>, Vec<RefAgg>> = HashMap::new();
    for r in 0..table.num_rows() {
        let row = table.row(r);
        if let Some(p) = &query.predicate {
            if !eval_pred(p, &row, &idx) {
                continue;
            }
        }
        let key: Vec<Value> = query.group_by.iter().map(|g| row[idx[g.as_str()]].clone()).collect();
        let states = out.entry(key).or_insert_with(|| {
            vec![
                RefAgg {
                    min: f64::INFINITY,
                    max: f64::NEG_INFINITY,
                    ..RefAgg::default()
                };
                query.aggregates.len()
            ]
        });
        for (i, agg) in query.aggregates.iter().enumerate() {
            let st = &mut states[i];
            st.rows += 1;
            match agg.func {
                AggFunc::Count => {
                    st.non_null += 1;
                    st.sum += 1.0;
                }
                _ => {
                    let col = agg.column.as_ref().unwrap();
                    if let Some(x) = row[idx[col.as_str()]].as_f64() {
                        st.non_null += 1;
                        st.sum += x;
                        st.min = st.min.min(x);
                        st.max = st.max.max(x);
                    }
                }
            }
        }
    }
    // Ungrouped aggregation always yields one row, even over zero matches.
    if query.group_by.is_empty() && out.is_empty() {
        out.insert(
            Vec::new(),
            vec![
                RefAgg {
                    min: f64::INFINITY,
                    max: f64::NEG_INFINITY,
                    ..RefAgg::default()
                };
                query.aggregates.len()
            ],
        );
    }
    out
}

/// Reference predicate walk. Only the type pairings the queries below use
/// are implemented; semantics mirror the executor (NULL at a leaf is
/// false, `Not` is plain negation).
fn eval_pred(e: &Expr, row: &[Value], idx: &HashMap<&str, usize>) -> bool {
    match e {
        Expr::Cmp { column, op, literal } => {
            let v = &row[idx[column.as_str()]];
            match (v, literal) {
                (Value::Int64(a), Value::Int64(b)) => op.evaluate(a.cmp(b)),
                (Value::Float64(a), lit) => match lit.as_f64() {
                    Some(b) => op.evaluate(a.total_cmp(&b)),
                    None => false,
                },
                (Value::Utf8(a), Value::Utf8(b)) => op.evaluate(a.as_str().cmp(b.as_str())),
                _ => false,
            }
        }
        Expr::InSet { column, values } => {
            let v = &row[idx[column.as_str()]];
            !v.is_null() && values.contains(v)
        }
        Expr::And(es) => es.iter().all(|e| eval_pred(e, row, idx)),
        Expr::Or(es) => es.iter().any(|e| eval_pred(e, row, idx)),
        Expr::Not(e) => !eval_pred(e, row, idx),
    }
}

/// The query grid: every aggregate function, 0/1/2/7 grouping columns,
/// and predicates over every compiled form (dict IN-list, int/float
/// comparisons, AND/OR/NOT).
fn query_grid() -> Vec<Query> {
    let all_aggs = |b: QueryBuilder| -> QueryBuilder {
        b.count()
            .sum("val")
            .sum("amt")
            .aggregate(AggExpr::avg("amt", "avg_amt"))
            .aggregate(AggExpr::min("val", "min_val"))
            .aggregate(AggExpr::max("amt", "max_amt"))
    };
    let mut queries = vec![
        all_aggs(Query::builder()).build().unwrap(),
        all_aggs(Query::builder()).group_by("cat").build().unwrap(),
        all_aggs(Query::builder())
            .group_by("cat")
            .group_by("sub")
            .filter(Expr::in_set("cat", vec!["a".into(), "c".into()]))
            .build()
            .unwrap(),
        all_aggs(Query::builder())
            .group_by("sub")
            .filter(Expr::Or(vec![
                Expr::cmp("val", CmpOp::Ge, 0.5f64),
                Expr::Not(Box::new(Expr::cmp("sub", CmpOp::Le, 2i64))),
            ]))
            .build()
            .unwrap(),
        // Predicate selecting nothing: ungrouped must still yield one row.
        Query::builder()
            .count()
            .sum("amt")
            .filter(Expr::cmp("sub", CmpOp::Gt, 99i64))
            .build()
            .unwrap(),
    ];
    // 7-column grouping: past MAX_FAST_KEY, uses the slow-key path.
    let mut seven = Query::builder().count().sum("amt");
    for i in 0..7 {
        seven = seven.group_by(format!("c{i}"));
    }
    queries.push(seven.build().unwrap());
    queries
}

fn run_at(table: &Table, q: &Query, threads: usize, morsel_rows: usize) -> aqp::query::QueryOutput {
    let opts = ExecOptions {
        parallelism: threads,
        morsel_rows,
        ..ExecOptions::default()
    };
    let mut out = aqp::query::execute(&DataSource::Wide(table), q, &opts).unwrap();
    out.sort_by_key();
    out
}

/// Run with an explicit kernel mode, *without* sorting, so group order —
/// which the determinism contract also covers — is compared as produced.
fn run_mode(
    table: &Table,
    q: &Query,
    threads: usize,
    morsel_rows: usize,
    kernels: KernelMode,
) -> aqp::query::QueryOutput {
    let opts = ExecOptions {
        parallelism: threads,
        morsel_rows,
        kernels,
        ..ExecOptions::default()
    };
    aqp::query::execute(&DataSource::Wide(table), q, &opts).unwrap()
}

fn assert_states_bit_identical(a: &AggState, b: &AggState, ctx: &str) {
    assert_eq!(a.rows, b.rows, "{ctx}: rows");
    for (x, y, field) in [
        (a.sum_w, b.sum_w, "sum_w"),
        (a.sum_wx, b.sum_wx, "sum_wx"),
        (a.sum_x, b.sum_x, "sum_x"),
        (a.sum_x_sq, b.sum_x_sq, "sum_x_sq"),
        (a.var_acc, b.var_acc, "var_acc"),
        (a.var_acc_w, b.var_acc_w, "var_acc_w"),
        (a.cov_acc, b.cov_acc, "cov_acc"),
        (a.min, b.min, "min"),
        (a.max, b.max, "max"),
    ] {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: {field} {x} vs {y}");
    }
}

#[test]
fn parallel_exact_answers_bit_identical_across_threads() {
    // morsel_rows 64 forces ~40 morsels on 2500 rows, so any
    // scheduling-dependent merge order would have every chance to show.
    let t = test_table(2_500, 7);
    for (qi, q) in query_grid().iter().enumerate() {
        let base = run_at(&t, q, 1, 64);
        for threads in [2, 4, 8] {
            let par = run_at(&t, q, threads, 64);
            assert_eq!(base.num_groups(), par.num_groups(), "query {qi} @ {threads}");
            for (a, b) in base.groups.iter().zip(&par.groups) {
                assert_eq!(a.key, b.key, "query {qi} @ {threads}");
                for (sa, sb) in a.aggs.iter().zip(&b.aggs) {
                    assert_states_bit_identical(
                        sa,
                        sb,
                        &format!("query {qi} @ {threads} threads, key {:?}", a.key),
                    );
                }
            }
        }
    }
}

#[test]
fn parallel_exact_answers_match_naive_reference() {
    let t = test_table(2_500, 11);
    for (qi, q) in query_grid().iter().enumerate() {
        let truth = reference(&t, q);
        for threads in [1, 4] {
            let out = run_at(&t, q, threads, 64);
            assert_eq!(
                out.num_groups(),
                truth.len(),
                "query {qi} @ {threads}: group count"
            );
            for g in &out.groups {
                let ctx = format!("query {qi} @ {threads}, key {:?}", g.key);
                let want = truth.get(&g.key).unwrap_or_else(|| panic!("{ctx}: spurious group"));
                for ((agg, st), rf) in q.aggregates.iter().zip(&g.aggs).zip(want) {
                    match agg.func {
                        AggFunc::Count => {
                            assert_eq!(st.rows, rf.rows, "{ctx}: COUNT rows");
                            assert_eq!(st.sum_w, rf.sum, "{ctx}: COUNT");
                        }
                        AggFunc::Sum | AggFunc::Avg => {
                            assert_eq!(st.rows, rf.non_null, "{ctx}: non-null rows");
                            let got = if agg.func == AggFunc::Avg {
                                if rf.non_null == 0 {
                                    continue;
                                }
                                st.sum_wx / st.sum_w
                            } else {
                                st.sum_wx
                            };
                            let want = if agg.func == AggFunc::Avg {
                                rf.sum / rf.non_null as f64
                            } else {
                                rf.sum
                            };
                            // Integer-valued "amt" sums are exact; the
                            // fractional "val" sums may differ from the
                            // left-to-right reference only in rounding.
                            let tol = 1e-12 * want.abs().max(1.0);
                            assert!(
                                (got - want).abs() <= tol,
                                "{ctx}: {} got {got} want {want}",
                                agg.alias
                            );
                        }
                        AggFunc::Min => {
                            assert_eq!(st.min.to_bits(), rf.min.to_bits(), "{ctx}: MIN");
                        }
                        AggFunc::Max => {
                            assert_eq!(st.max.to_bits(), rf.max.to_bits(), "{ctx}: MAX");
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn scalar_and_vectorized_kernels_bit_identical() {
    // The vectorised kernels (selection vectors, typed aggregation loops,
    // dense group ids) must reproduce the scalar reference loop exactly:
    // same groups, in the same order, with every tally field agreeing to
    // the last bit — at every thread count, across the whole query grid
    // (which covers the dense path, the hash fast-key path, and the
    // slow-key path past MAX_FAST_KEY).
    let t = test_table(2_500, 13);
    for (qi, q) in query_grid().iter().enumerate() {
        for threads in [1, 4, 8] {
            let scalar = run_mode(&t, q, threads, 64, KernelMode::Scalar);
            let vect = run_mode(&t, q, threads, 64, KernelMode::Vectorized);
            assert_eq!(scalar.rows_scanned, vect.rows_scanned, "query {qi} @ {threads}");
            assert_eq!(scalar.num_groups(), vect.num_groups(), "query {qi} @ {threads}");
            for (a, b) in scalar.groups.iter().zip(&vect.groups) {
                assert_eq!(a.key, b.key, "query {qi} @ {threads}: group order");
                for (sa, sb) in a.aggs.iter().zip(&b.aggs) {
                    assert_states_bit_identical(
                        sa,
                        sb,
                        &format!("query {qi} @ {threads} threads, key {:?}", a.key),
                    );
                }
            }
        }
    }
}

#[test]
fn union_all_rewrite_plan_identical_across_kernel_modes() {
    // The sampler's UNION ALL plan runs weighted, bitmask-filtered scans
    // through the same executor; forcing the process-wide kernel mode
    // must not move a single bit of any estimate or interval. The global
    // override is restored to Auto even on panic so concurrently running
    // tests (which are mode-agnostic by this very contract) see a clean
    // default afterwards.
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            aqp::query::set_kernel_mode(KernelMode::Auto);
        }
    }
    let _restore = Restore;

    let t = test_table(3_000, 17);
    let sampler = SmallGroupSampler::build(
        &t,
        SmallGroupConfig {
            seed: 5,
            ..SmallGroupConfig::with_rates(0.1, 0.5)
        },
    )
    .unwrap();
    let queries = [
        Query::builder().count().group_by("cat").build().unwrap(),
        Query::builder()
            .count()
            .sum("amt")
            .aggregate(AggExpr::avg("val", "avg_val"))
            .group_by("cat")
            .group_by("sub")
            .build()
            .unwrap(),
    ];
    for (qi, q) in queries.iter().enumerate() {
        aqp::query::set_kernel_mode(KernelMode::Scalar);
        let mut scalar = sampler.answer(q, 0.95).unwrap();
        scalar.sort_by_key();
        aqp::query::set_kernel_mode(KernelMode::Vectorized);
        let mut vect = sampler.answer(q, 0.95).unwrap();
        vect.sort_by_key();
        assert_eq!(scalar.groups.len(), vect.groups.len(), "query {qi}");
        for (a, b) in scalar.groups.iter().zip(&vect.groups) {
            assert_eq!(a.key, b.key, "query {qi}");
            for (va, vb) in a.values.iter().zip(&b.values) {
                assert_eq!(
                    va.value().to_bits(),
                    vb.value().to_bits(),
                    "query {qi}: estimate for {:?}",
                    a.key
                );
                assert_eq!(va.ci.lo.to_bits(), vb.ci.lo.to_bits(), "query {qi}: ci.lo");
                assert_eq!(va.ci.hi.to_bits(), vb.ci.hi.to_bits(), "query {qi}: ci.hi");
            }
        }
    }
}

#[test]
fn union_all_rewrite_plan_bit_identical_across_threads() {
    // The sampler's answer path is the paper's UNION ALL over strata
    // (small-group tables + bitmask-filtered overall sample). Thread
    // count must not perturb a single bit of estimate or interval.
    let t = test_table(3_000, 3);
    let mut sampler = SmallGroupSampler::build(
        &t,
        SmallGroupConfig {
            seed: 5,
            ..SmallGroupConfig::with_rates(0.1, 0.5)
        },
    )
    .unwrap();

    let queries = [
        Query::builder().count().group_by("cat").build().unwrap(),
        Query::builder()
            .count()
            .sum("amt")
            .aggregate(AggExpr::avg("val", "avg_val"))
            .group_by("cat")
            .group_by("sub")
            .build()
            .unwrap(),
        Query::builder()
            .sum("val")
            .filter(Expr::in_set("cat", vec!["a".into(), "b".into()]))
            .build()
            .unwrap(),
    ];

    for (qi, q) in queries.iter().enumerate() {
        sampler.set_threads(1);
        let mut base = sampler.answer(q, 0.95).unwrap();
        base.sort_by_key();
        for threads in [2, 4, 8] {
            sampler.set_threads(threads);
            let mut par = sampler.answer(q, 0.95).unwrap();
            par.sort_by_key();
            assert_eq!(base.groups.len(), par.groups.len(), "query {qi} @ {threads}");
            for (a, b) in base.groups.iter().zip(&par.groups) {
                assert_eq!(a.key, b.key, "query {qi} @ {threads}");
                for (va, vb) in a.values.iter().zip(&b.values) {
                    assert_eq!(
                        va.value().to_bits(),
                        vb.value().to_bits(),
                        "query {qi} @ {threads}: estimate for {:?}",
                        a.key
                    );
                    assert_eq!(va.ci.lo.to_bits(), vb.ci.lo.to_bits(), "query {qi} @ {threads}");
                    assert_eq!(va.ci.hi.to_bits(), vb.ci.hi.to_bits(), "query {qi} @ {threads}");
                    assert_eq!(va.is_exact(), vb.is_exact(), "query {qi} @ {threads}");
                }
            }
        }
    }
}

#[test]
fn parallel_sgs_build_produces_identical_families() {
    // Parallel preprocessing: per-worker group-frequency histograms are
    // merged in morsel order before the small-group/overall split, so the
    // resulting sample family must be byte-identical at any thread count.
    let t = test_table(3_000, 9);
    let build = |threads: usize| {
        SmallGroupSampler::build(
            &t,
            SmallGroupConfig {
                seed: 5,
                preprocess_threads: threads,
                ..SmallGroupConfig::with_rates(0.1, 0.5)
            },
        )
        .unwrap()
    };
    let base = build(1);
    let q = Query::builder()
        .count()
        .sum("amt")
        .group_by("cat")
        .build()
        .unwrap();
    let mut base_ans = base.answer(&q, 0.95).unwrap();
    base_ans.sort_by_key();
    for threads in [2, 4, 8] {
        let other = build(threads);
        assert_eq!(
            base.catalog().to_string(),
            other.catalog().to_string(),
            "catalog @ {threads} threads"
        );
        let mut ans = other.answer(&q, 0.95).unwrap();
        ans.sort_by_key();
        assert_eq!(base_ans.groups.len(), ans.groups.len());
        for (a, b) in base_ans.groups.iter().zip(&ans.groups) {
            assert_eq!(a.key, b.key);
            for (va, vb) in a.values.iter().zip(&b.values) {
                assert_eq!(va.value().to_bits(), vb.value().to_bits(), "build @ {threads}");
            }
        }
    }
}
