//! Rewriter correctness: the UNION ALL plan with bitmask filters must
//! partition the data exactly — no row double-counted, no row lost.
//!
//! The decisive test: build small group sampling with a 100% base rate, so
//! the "overall sample" holds every row. Then every rewritten query's
//! merged answer must equal the exact answer *identically* for any query —
//! any double counting (a row surviving two strata) or loss (over-eager
//! masking) shows up as a wrong count.

use aqp::prelude::*;

fn exact_matches_rewritten(view: &Table, sampler: &SmallGroupSampler, query: &Query) {
    let exact = exact_answer(&DataSource::Wide(view), query).expect("exact");
    let approx = sampler.answer(query, 0.95).expect("approx");
    assert_eq!(
        exact.per_agg[0].len(),
        approx.num_groups(),
        "group count mismatch for {query}"
    );
    for g in &approx.groups {
        let truth = exact.per_agg[0]
            .get(&g.key)
            .copied()
            .unwrap_or_else(|| panic!("spurious group {:?} for {query}", g.key));
        assert!(
            (g.values[0].value() - truth).abs() < 1e-6,
            "group {:?}: rewritten {} vs exact {truth} for {query}",
            g.key,
            g.values[0].value(),
        );
    }
}

#[test]
fn full_rate_rewriting_is_lossless_tpch() {
    let star = gen_tpch(&TpchConfig {
        scale_factor: 0.05,
        zipf_z: 2.0,
        seed: 13,
    })
    .unwrap();
    let view = star.denormalize("v").unwrap();
    let sampler = SmallGroupSampler::build(
        &view,
        SmallGroupConfig {
            base_rate: 1.0, // overall sample = whole table
            small_group_fraction: 0.01,
            ..Default::default()
        },
    )
    .unwrap();

    let queries = vec![
        Query::builder().count().group_by("lineitem.shipmode").build().unwrap(),
        Query::builder()
            .count()
            .group_by("lineitem.shipmode")
            .group_by("part.brand")
            .build()
            .unwrap(),
        Query::builder()
            .count()
            .group_by("part.brand")
            .group_by("supplier.nation")
            .group_by("lineitem.returnflag")
            .build()
            .unwrap(),
        Query::builder()
            .sum("lineitem.extendedprice")
            .group_by("customer.segment")
            .filter(Expr::cmp("lineitem.quantity", CmpOp::Le, 25i64))
            .build()
            .unwrap(),
        Query::builder().count().build().unwrap(),
        Query::builder()
            .count()
            .group_by("orders.year")
            .group_by("orders.month")
            .group_by("lineitem.shipyear")
            .group_by("lineitem.shipmonth")
            .build()
            .unwrap(),
    ];
    for q in &queries {
        exact_matches_rewritten(&view, &sampler, q);
    }
}

#[test]
fn full_rate_rewriting_is_lossless_sales() {
    let star = gen_sales(&SalesConfig {
        fact_rows: 4_000,
        ..Default::default()
    })
    .unwrap();
    let view = star.denormalize("v").unwrap();
    let sampler = SmallGroupSampler::build(
        &view,
        SmallGroupConfig {
            base_rate: 1.0,
            small_group_fraction: 0.02,
            ..Default::default()
        },
    )
    .unwrap();
    let queries = vec![
        Query::builder()
            .count()
            .group_by("product.category")
            .group_by("store.region")
            .build()
            .unwrap(),
        Query::builder()
            .sum("sales.revenue")
            .group_by("customer.segment")
            .group_by("channel.name")
            .filter(Expr::in_set(
                "sales.paymethod",
                vec!["PAY#000".into(), "PAY#001".into()],
            ))
            .build()
            .unwrap(),
    ];
    for q in &queries {
        exact_matches_rewritten(&view, &sampler, q);
    }
}

#[test]
fn full_rate_multilevel_is_lossless() {
    // The multi-level variant must obey the same partition invariant when
    // every stratum is sampled at 100%.
    let star = gen_tpch(&TpchConfig {
        scale_factor: 0.05,
        zipf_z: 1.5,
        seed: 17,
    })
    .unwrap();
    let view = star.denormalize("v").unwrap();
    let ml = MultiLevelSampler::build(
        &view,
        MultiLevelConfig {
            base_rate: 1.0,
            levels: vec![(0.01, 1.0), (0.05, 1.0)],
            ..Default::default()
        },
    )
    .unwrap();
    let q = Query::builder()
        .count()
        .group_by("part.brand")
        .group_by("lineitem.shipmode")
        .build()
        .unwrap();
    let exact = exact_answer(&DataSource::Wide(&view), &q).unwrap();
    let approx = ml.answer(&q, 0.95).unwrap();
    assert_eq!(exact.per_agg[0].len(), approx.num_groups());
    for g in &approx.groups {
        let truth = exact.per_agg[0][&g.key];
        assert!(
            (g.values[0].value() - truth).abs() < 1e-6,
            "group {:?}: {} vs {truth}",
            g.key,
            g.values[0].value()
        );
    }
}

#[test]
fn sgs_outlier_combination_is_lossless_at_full_rate() {
    let star = gen_sales(&SalesConfig {
        fact_rows: 3_000,
        ..Default::default()
    })
    .unwrap();
    let view = star.denormalize("v").unwrap();
    let sampler = SmallGroupSampler::build(
        &view,
        SmallGroupConfig {
            base_rate: 1.0,
            small_group_fraction: 0.02,
            overall: OverallKind::OutlierIndexed {
                column: "sales.revenue".into(),
            },
            ..Default::default()
        },
    )
    .unwrap();
    let q = Query::builder()
        .sum("sales.revenue")
        .group_by("store.region")
        .build()
        .unwrap();
    let exact = exact_answer(&DataSource::Wide(&view), &q).unwrap();
    let approx = sampler.answer(&q, 0.95).unwrap();
    for g in &approx.groups {
        let truth = exact.per_agg[0][&g.key];
        assert!(
            (g.values[0].value() - truth).abs() / truth.abs().max(1.0) < 1e-9,
            "group {:?}: {} vs {truth}",
            g.key,
            g.values[0].value()
        );
    }
}
