//! Concurrency stress for the observability runtime: counters and
//! histograms hammered from the morsel thread pool must lose nothing —
//! atomic totals are exact, not sampled.
//!
//! Each test uses a private [`obs::Registry`] so the tests (which the
//! harness runs on parallel threads) cannot perturb each other through
//! the process-global registry.

use aqp::obs;
use aqp::query::parallel::run_morsels;

/// Every worker increments shared counters and observes into a shared
/// histogram; the final totals must equal the arithmetic sum regardless
/// of thread interleaving.
#[test]
fn counters_and_histograms_are_exact_under_morsel_parallelism() {
    obs::set_enabled(true);
    let rows = 100_000;
    let morsel = 1_024;

    for threads in [1usize, 2, 4, 8] {
        let registry = obs::Registry::new();
        let counter = registry.counter("obs_stress_total", &[("test", "concurrency")]);
        let by_rows = registry.counter("obs_stress_rows_total", &[("test", "concurrency")]);
        let hist = registry.histogram("obs_stress_seconds", &[("test", "concurrency")]);
        let per_morsel = run_morsels(rows, morsel, threads, |m| {
            // Handles were hoisted outside; workers only touch atomics —
            // the same discipline the instrumented executor follows.
            for row in m.start..m.end {
                counter.inc();
                hist.observe((row % 977 + 1) as u64);
            }
            by_rows.inc_by((m.end - m.start) as u64);
            m.end - m.start
        });
        let morsel_sum: usize = per_morsel.iter().sum();
        assert_eq!(morsel_sum, rows);
        assert_eq!(counter.get(), rows as u64, "lost increments at {threads} threads");
        assert_eq!(by_rows.get(), rows as u64);
        assert_eq!(hist.count(), rows as u64, "lost observations at {threads} threads");
        // Exact sum: sum over 0..rows of (row % 977 + 1).
        let expect_sum: u64 = (0..rows).map(|r| (r % 977 + 1) as u64).sum();
        assert_eq!(hist.sum(), expect_sum);
    }
}

/// Quantiles from a contended histogram stay within the structural
/// relative-error bound of the log-linear buckets (≤12.5%).
#[test]
fn histogram_quantiles_bounded_error_under_contention() {
    obs::set_enabled(true);
    let registry = obs::Registry::new();
    let hist = registry.histogram("obs_stress_quantile_seconds", &[]);
    let n = 64_000usize;
    run_morsels(n, 512, 8, |m| {
        for row in m.start..m.end {
            // Uniform values 1..=n: the true p50 is n/2.
            hist.observe((row + 1) as u64);
        }
    });
    assert_eq!(hist.count(), n as u64);
    let p50 = hist.quantile(0.5) as f64;
    let truth = n as f64 / 2.0;
    assert!(
        (p50 - truth).abs() / truth < 0.15,
        "p50 {p50} vs true median {truth}"
    );
}

/// Registry snapshots taken while workers are recording remain
/// internally consistent: counters never go backwards across snapshots,
/// and the final snapshot sees every increment.
#[test]
fn snapshot_under_load_is_monotone() {
    obs::set_enabled(true);
    let registry = obs::Registry::new();
    let counter = registry.counter("obs_stress_monotone_total", &[]);
    let mut last = 0u64;
    run_morsels(32_768, 256, 4, |m| {
        for _ in m.start..m.end {
            counter.inc();
        }
    });
    for _ in 0..4 {
        let snap = registry.snapshot();
        let v = snap.counter_total("obs_stress_monotone_total");
        assert!(v >= last, "counter went backwards: {last} -> {v}");
        last = v;
    }
    assert_eq!(last, 32_768);
}
