//! Concurrency stress for the observability runtime: counters and
//! histograms hammered from the morsel thread pool must lose nothing —
//! atomic totals are exact, not sampled.
//!
//! Each test uses a private [`obs::Registry`] so the tests (which the
//! harness runs on parallel threads) cannot perturb each other through
//! the process-global registry.

use aqp::obs;
use aqp::query::parallel::run_morsels;
use aqp::prelude::*;
use aqp::serving::{Client, Request, Response, RetryPolicy, Server, ServerConfig};

/// Every worker increments shared counters and observes into a shared
/// histogram; the final totals must equal the arithmetic sum regardless
/// of thread interleaving.
#[test]
fn counters_and_histograms_are_exact_under_morsel_parallelism() {
    obs::set_enabled(true);
    let rows = 100_000;
    let morsel = 1_024;

    for threads in [1usize, 2, 4, 8] {
        let registry = obs::Registry::new();
        let counter = registry.counter("obs_stress_total", &[("test", "concurrency")]);
        let by_rows = registry.counter("obs_stress_rows_total", &[("test", "concurrency")]);
        let hist = registry.histogram("obs_stress_seconds", &[("test", "concurrency")]);
        let per_morsel = run_morsels(rows, morsel, threads, |m| {
            // Handles were hoisted outside; workers only touch atomics —
            // the same discipline the instrumented executor follows.
            for row in m.start..m.end {
                counter.inc();
                hist.observe((row % 977 + 1) as u64);
            }
            by_rows.inc_by((m.end - m.start) as u64);
            m.end - m.start
        });
        let morsel_sum: usize = per_morsel.iter().sum();
        assert_eq!(morsel_sum, rows);
        assert_eq!(counter.get(), rows as u64, "lost increments at {threads} threads");
        assert_eq!(by_rows.get(), rows as u64);
        assert_eq!(hist.count(), rows as u64, "lost observations at {threads} threads");
        // Exact sum: sum over 0..rows of (row % 977 + 1).
        let expect_sum: u64 = (0..rows).map(|r| (r % 977 + 1) as u64).sum();
        assert_eq!(hist.sum(), expect_sum);
    }
}

/// Quantiles from a contended histogram stay within the structural
/// relative-error bound of the log-linear buckets (≤12.5%).
#[test]
fn histogram_quantiles_bounded_error_under_contention() {
    obs::set_enabled(true);
    let registry = obs::Registry::new();
    let hist = registry.histogram("obs_stress_quantile_seconds", &[]);
    let n = 64_000usize;
    run_morsels(n, 512, 8, |m| {
        for row in m.start..m.end {
            // Uniform values 1..=n: the true p50 is n/2.
            hist.observe((row + 1) as u64);
        }
    });
    assert_eq!(hist.count(), n as u64);
    let p50 = hist.quantile(0.5) as f64;
    let truth = n as f64 / 2.0;
    assert!(
        (p50 - truth).abs() / truth < 0.15,
        "p50 {p50} vs true median {truth}"
    );
}

/// Registry snapshots taken while workers are recording remain
/// internally consistent: counters never go backwards across snapshots,
/// and the final snapshot sees every increment.
#[test]
fn snapshot_under_load_is_monotone() {
    obs::set_enabled(true);
    let registry = obs::Registry::new();
    let counter = registry.counter("obs_stress_monotone_total", &[]);
    let mut last = 0u64;
    run_morsels(32_768, 256, 4, |m| {
        for _ in m.start..m.end {
            counter.inc();
        }
    });
    for _ in 0..4 {
        let snap = registry.snapshot();
        let v = snap.counter_total("obs_stress_monotone_total");
        assert!(v >= last, "counter went backwards: {last} -> {v}");
        last = v;
    }
    assert_eq!(last, 32_768);
}

/// The flight-recorder ring under concurrent writers keeps exactly the
/// newest N records and never tears one: every retained record is
/// internally consistent (trace id, rows_scanned, total and stage sum
/// all derived from the same sequence number), and each thread's
/// retained records appear in its push order.
#[test]
fn flight_ring_wraps_concurrently_without_tearing() {
    obs::set_enabled(true);
    let cap = 64usize;
    let threads = 8usize;
    let per_thread = 200u64;
    let recorder = obs::FlightRecorder::new(cap);
    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            let recorder = &recorder;
            s.spawn(move || {
                for i in 0..per_thread {
                    let seq = t * 1_000_000 + i;
                    recorder.record(obs::RequestRecord {
                        trace_id: format!("t{t}-{i}"),
                        class: "interactive".into(),
                        outcome: "answer".into(),
                        tier: "primary".into(),
                        cache_hit: false,
                        rows_scanned: seq,
                        total_micros: seq,
                        stages: vec![
                            obs::Stage { name: "read".into(), micros: seq / 2 },
                            obs::Stage { name: "execute".into(), micros: seq - seq / 2 },
                        ],
                    });
                }
            });
        }
    });
    let recent = recorder.recent();
    assert_eq!(recent.len(), cap, "ring holds exactly the newest {cap}");
    let mut last_seq_by_thread = vec![None::<u64>; threads];
    for record in &recent {
        let (t, i) = record
            .trace_id
            .strip_prefix('t')
            .and_then(|rest| rest.split_once('-'))
            .map(|(t, i)| (t.parse::<u64>().unwrap(), i.parse::<u64>().unwrap()))
            .expect("trace id shape");
        let seq = t * 1_000_000 + i;
        // No tearing: every field of the record matches the sequence
        // number its trace id claims.
        assert_eq!(record.rows_scanned, seq, "torn rows_scanned in {}", record.trace_id);
        assert_eq!(record.total_micros, seq, "torn total in {}", record.trace_id);
        let stage_sum: u64 = record.stages.iter().map(|s| s.micros).sum();
        assert_eq!(stage_sum, seq, "torn stages in {}", record.trace_id);
        // FIFO eviction: what survives per thread is in push order.
        if let Some(prev) = last_seq_by_thread[t as usize] {
            assert!(seq > prev, "thread {t} records out of order: {prev} then {seq}");
        }
        last_seq_by_thread[t as usize] = Some(seq);
    }
}

/// The global event ring under concurrent writers wraps at its capacity
/// keeping the newest events, and never tears one (message and fields
/// stay from the same `record` call).
#[test]
fn event_ring_wraps_concurrently_without_tearing() {
    obs::set_enabled(true);
    let threads = 8u64;
    let per_thread = 200u64; // 1600 > RING_CAPACITY (1024): forces wrap
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                for i in 0..per_thread {
                    let thread = t.to_string();
                    let seq = i.to_string();
                    obs::event::info(
                        "obs_stress",
                        &format!("e{t}-{i}"),
                        &[("thread", &thread), ("seq", &seq)],
                    );
                }
            });
        }
    });
    let recent = obs::event::recent();
    assert_eq!(recent.len(), obs::event::RING_CAPACITY, "ring wrapped to capacity");
    let mut ours = 0usize;
    let mut last_seq_by_thread = vec![None::<u64>; threads as usize];
    for event in &recent {
        if event.target != "obs_stress" {
            continue; // other tests in this binary may emit events too
        }
        ours += 1;
        let field = |k: &str| {
            event
                .fields
                .iter()
                .find(|(fk, _)| fk == k)
                .map(|(_, v)| v.clone())
                .expect("field present")
        };
        let (t, i): (u64, u64) = (field("thread").parse().unwrap(), field("seq").parse().unwrap());
        assert_eq!(event.message, format!("e{t}-{i}"), "torn event");
        if let Some(prev) = last_seq_by_thread[t as usize] {
            assert!(i > prev, "thread {t} events out of order: {prev} then {i}");
        }
        last_seq_by_thread[t as usize] = Some(i);
    }
    // The newest 1024 of 1600 pushes survive; allow for foreign events
    // but most of the ring must be ours.
    assert!(ours >= obs::event::RING_CAPACITY / 2, "only {ours} stress events retained");
}

/// Registry snapshots taken while a live server is answering stay
/// internally consistent — counters are monotone across snapshots and
/// the final totals reconcile with what the clients saw.
#[test]
fn registry_snapshot_consistent_while_server_answers() {
    obs::set_enabled(true);
    let star = gen_sales(&SalesConfig { fact_rows: 10_000, zipf_z: 1.5, seed: 42 }).unwrap();
    let view = star.denormalize("view").unwrap();
    let system = ResilientSystem::exact_only(view).with_threads(2);
    let server = Server::bind(system, ServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run());

    let before = obs::global().snapshot();
    let base = before.counter_total("aqp_server_requests_total");
    let clients = 4usize;
    let per_client = 10usize;
    let answered: usize = std::thread::scope(|s| {
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                let addr = addr.clone();
                s.spawn(move || {
                    let mut client = Client::new(addr, RetryPolicy::with_seed(0xce11 + c as u64));
                    let mut got = 0usize;
                    for _ in 0..per_client {
                        if let Ok(Response::Answer(_)) = client.request(&Request::query(
                            "SELECT store.region, COUNT(*) AS cnt FROM v GROUP BY store.region",
                        )) {
                            got += 1;
                        }
                    }
                    got
                })
            })
            .collect();
        // Snapshot the global registry while the workers hammer the
        // server: monotone counters, no torn reads.
        let mut last = base;
        while workers.iter().any(|w| !w.is_finished()) {
            let snap = obs::global().snapshot();
            let v = snap.counter_total("aqp_server_requests_total");
            assert!(v >= last, "server request counter went backwards: {last} -> {v}");
            last = v;
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        workers.into_iter().map(|w| w.join().unwrap()).sum()
    });
    handle.shutdown();
    join.join().unwrap().unwrap();

    assert_eq!(answered, clients * per_client, "every request answered");
    let after = obs::global().snapshot();
    let total = after.counter_total("aqp_server_requests_total") - base;
    assert!(
        total >= (clients * per_client) as u64,
        "snapshot missed increments: {total} < {}",
        clients * per_client
    );
}
