//! End-to-end request-scoped observability: trace ids round-tripping on
//! the wire, the flight recorder's contiguous stage timelines (live via
//! the `dump` verb and on-anomaly via the dump file), and the shadow
//! accuracy auditor's realized-coverage-vs-promised-CI audit over a
//! mixed workload — including the proof that shadow re-execution never
//! consumes an admission slot.

use aqp::obs::RequestRecord;
use aqp::prelude::*;
use aqp::serving::{
    fault, CacheConfig, Client, ContractClass, Request, Response, RetryPolicy, Server,
    ServerConfig, ServingFault, ShadowConfig,
};
use aqp::workload::CoverageBucket;
use std::time::{Duration, Instant};

fn sales_view(rows: usize) -> Table {
    let star = gen_sales(&SalesConfig { fact_rows: rows, zipf_z: 1.5, seed: 42 }).unwrap();
    star.denormalize("view").unwrap()
}

fn start_server(
    system: ResilientSystem,
    config: ServerConfig,
) -> (
    String,
    aqp::serving::ShutdownHandle,
    std::thread::JoinHandle<std::io::Result<aqp::serving::ServerReport>>,
) {
    let server = Server::bind(system, config).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

const SQL: &str = "SELECT store.region, COUNT(*) AS cnt, SUM(sales.revenue) AS rev \
                   FROM v GROUP BY store.region";

fn query_with_trace(trace_id: Option<&str>) -> Request {
    Request::Query {
        sql: SQL.into(),
        class: ContractClass::Interactive,
        deadline_ms: None,
        row_budget: None,
        confidence: None,
        max_rel_error: None,
        trace_id: trace_id.map(str::to_string),
    }
}

/// The full stage order a served query walks; any record's timeline must
/// be a subsequence of it.
const STAGE_ORDER: [&str; 7] =
    ["read", "parse", "cache", "admission", "execute", "serialize", "write"];

fn assert_timeline_well_formed(record: &RequestRecord) {
    let mut cursor = 0usize;
    for stage in &record.stages {
        let pos = STAGE_ORDER[cursor..]
            .iter()
            .position(|s| *s == stage.name)
            .unwrap_or_else(|| {
                panic!(
                    "stage {:?} out of order in {:?}",
                    stage.name,
                    record.stages.iter().map(|s| &s.name).collect::<Vec<_>>()
                )
            });
        cursor += pos + 1;
    }
    let sum: u64 = record.stages.iter().map(|s| s.micros).sum();
    assert_eq!(
        sum, record.total_micros,
        "stage sum must equal the recorded wall total (gap-free timeline)"
    );
}

#[test]
fn trace_id_round_trips_and_dump_has_contiguous_timelines() {
    let (addr, handle, join) = start_server(
        ResilientSystem::exact_only(sales_view(5_000)).with_threads(2),
        ServerConfig::default(),
    );
    let mut client = Client::new(addr, RetryPolicy::no_retry());

    // Client-supplied trace id comes back verbatim on the answer frame.
    let t0 = Instant::now();
    let wall = match client.request(&query_with_trace(Some("cli-test-1"))).unwrap() {
        Response::Answer(a) => {
            assert_eq!(a.trace_id, "cli-test-1");
            t0.elapsed()
        }
        other => panic!("expected answer, got {other:?}"),
    };

    // Absent a client id the server mints one.
    match client.request(&query_with_trace(None)).unwrap() {
        Response::Answer(a) => {
            assert!(a.trace_id.starts_with("aqp-"), "generated id: {:?}", a.trace_id);
        }
        other => panic!("expected answer, got {other:?}"),
    }

    // The dump verb returns the flight ring; our trace is in it with a
    // monotone, gap-free stage timeline whose sum is the observed wall
    // time of the request (bounded by what the client measured).
    let dump = match client.request(&Request::Dump).unwrap() {
        Response::Dump(text) => text,
        other => panic!("expected dump, got {other:?}"),
    };
    let records: Vec<RequestRecord> = dump
        .lines()
        .map(|line| RequestRecord::from_json(line).unwrap())
        .collect();
    assert!(records.len() >= 2, "both queries recorded, got {}", records.len());
    for record in &records {
        assert_timeline_well_formed(record);
    }
    let ours = records
        .iter()
        .find(|r| r.trace_id == "cli-test-1")
        .expect("client-supplied trace id present in the flight dump");
    assert_eq!(ours.outcome, "answer");
    assert_eq!(ours.class, "interactive");
    assert!(!ours.cache_hit);
    assert!(ours.rows_scanned > 0);
    assert!(ours.total_micros > 0, "a real request takes measurable time");
    assert!(
        ours.total_micros <= wall.as_micros() as u64,
        "server-side wall {}us cannot exceed client-observed {}us",
        ours.total_micros,
        wall.as_micros()
    );
    // All seven stages are present for a cache-miss answered query.
    let names: Vec<&str> = ours.stages.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, STAGE_ORDER, "full stage walk for an executed answer");

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn anomaly_dump_file_contains_the_timed_out_trace() {
    let dir = std::env::temp_dir().join(format!("aqp_obs_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dump_path = dir.join("flight.jsonl");

    // exec-stall@0 blocks the first execution until its deadline token
    // trips: a deterministic timeout, which is an anomaly, which must
    // dump the flight ring to the configured path.
    let _guard = fault::install(vec![ServingFault::ExecStall { nth: 0 }]);
    let (addr, handle, join) = start_server(
        ResilientSystem::exact_only(sales_view(5_000)).with_threads(2),
        ServerConfig {
            flight_dump: Some(dump_path.clone()),
            ..ServerConfig::default()
        },
    );
    let mut client = Client::new(addr, RetryPolicy::no_retry());
    match client
        .request(&Request::Query {
            sql: SQL.into(),
            class: ContractClass::Interactive,
            deadline_ms: Some(150),
            row_budget: None,
            confidence: None,
            max_rel_error: None,
            trace_id: Some("tid-stall-1".into()),
        })
        .unwrap()
    {
        Response::Timeout { trace_id, .. } => {
            assert_eq!(trace_id, "tid-stall-1", "timeout carries the trace id");
        }
        other => panic!("expected timeout, got {other:?}"),
    }

    // The dump is written right after the terminal response; poll
    // briefly for the file to contain the triggering trace.
    let deadline = Instant::now() + Duration::from_secs(5);
    let record = loop {
        let found = std::fs::read_to_string(&dump_path)
            .ok()
            .and_then(|text| {
                text.lines()
                    .map(|l| RequestRecord::from_json(l).unwrap())
                    .find(|r| r.trace_id == "tid-stall-1")
            });
        if let Some(record) = found {
            break record;
        }
        assert!(Instant::now() < deadline, "anomaly dump never appeared at {dump_path:?}");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(record.outcome, "timeout");
    assert_timeline_well_formed(&record);
    // The stall held the request for its deadline: the timeline shows
    // where the time went (execute dominates).
    assert!(record.total_micros >= 100_000, "stalled ~150ms, saw {}us", record.total_micros);

    handle.shutdown();
    join.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shadow_audit_holds_promised_coverage_without_admission_slots() {
    // Sampler-backed system: answers come from the sampled tier (so the
    // shadow auditor has CIs to check) with the base view attached for
    // the exact oracle rung. Mild skew and a substantial base rate keep
    // the CLT honest for SUM cells: the audit here checks that realized
    // coverage matches the nominal level where the estimator's own
    // assumptions hold — every cell rides on one sample draw, so a
    // heavy-tailed draw would correlate all the misses at once.
    let star = gen_sales(&SalesConfig { fact_rows: 20_000, zipf_z: 1.0, seed: 42 }).unwrap();
    let view = star.denormalize("view").unwrap();
    let sampler = SmallGroupSampler::build(
        &view,
        SmallGroupConfig { seed: 7, ..SmallGroupConfig::with_rates(0.2, 0.5) },
    )
    .unwrap();
    let system = ResilientSystem::from_sampler(sampler).with_view(view).with_threads(2);

    let before = aqp::obs::global().snapshot();
    let (addr, handle, join) = start_server(
        system,
        ServerConfig {
            // Cache off so all ~216 queries really execute on the
            // sampled tier and are eligible for auditing.
            cache: CacheConfig::disabled(),
            shadow: ShadowConfig { rate: 1.0, queue_cap: 2048, ..ShadowConfig::default() },
            ..ServerConfig::default()
        },
    );

    // ≥200-query mixed workload: 3 grouping columns x 3 aggregate sets
    // x 24 predicate thresholds, sent on the batch class so the
    // admission ledger below is isolated from other tests in this
    // binary (which use the interactive class).
    let groups = ["store.region", "product.category", "customer.segment"];
    let aggs =
        ["COUNT(*) AS c", "SUM(sales.revenue) AS r", "COUNT(*) AS c, SUM(sales.units) AS u"];
    let mut client = Client::new(addr, RetryPolicy::with_seed(0x5ad0));
    let mut answered = 0u64;
    let mut sampled_tier = 0u64;
    for g in &groups {
        for a in &aggs {
            for t in 0..24 {
                let sql = format!(
                    "SELECT {g}, {a} FROM v WHERE sales.revenue > {} GROUP BY {g}",
                    t * 15
                );
                match client
                    .request(&Request::Query {
                        sql,
                        class: ContractClass::Batch,
                        deadline_ms: None,
                        row_budget: None,
                        confidence: Some(0.95),
                        max_rel_error: None,
                        trace_id: None,
                    })
                    .unwrap()
                {
                    Response::Answer(answer) => {
                        answered += 1;
                        if answer.tier != "exact" {
                            sampled_tier += 1;
                        }
                    }
                    other => panic!("expected answer, got {other:?}"),
                }
            }
        }
    }
    assert_eq!(answered, 216, "every workload query answered");
    assert!(sampled_tier >= 200, "workload must exercise the sampled tier");

    // Graceful shutdown joins the shadow worker after it drains the
    // queue, so the aqp_shadow_* totals below are complete.
    handle.shutdown();
    join.join().unwrap().unwrap();

    let after = aqp::obs::global().snapshot();
    let delta = |name: &str| {
        after.counter_total(name).saturating_sub(before.counter_total(name))
    };
    assert_eq!(delta("aqp_shadow_dropped_total"), 0, "queue never overflowed");
    assert_eq!(delta("aqp_shadow_error_total"), 0, "exact oracle never failed");
    assert_eq!(
        delta("aqp_shadow_queries_total"),
        sampled_tier,
        "every sampled-tier answer was audited exactly once"
    );

    // Realized coverage vs the promised 95% CIs, judged by the same
    // Agresti–Coull under-coverage rule as `workload --calibrate`.
    let cells = delta("aqp_shadow_cells_total");
    let covered = delta("aqp_shadow_within_ci_total");
    assert!(cells >= 200, "need a real cell population, got {cells}");
    assert_eq!(cells, covered + delta("aqp_shadow_miss_total"), "cells partition");
    let bucket = CoverageBucket { label: "shadow".into(), cells, covered };
    assert!(
        !bucket.flagged(0.95),
        "shadow audit demonstrates under-coverage: {covered}/{cells} = {:.3}",
        bucket.observed()
    );

    // Admission-slot proof: the ledger admitted exactly one slot per
    // served batch query — the ~216 shadow re-executions took none.
    let batch = &[("class", "batch")];
    let admitted = after
        .counter_value("aqp_server_admitted_total", batch)
        .unwrap_or(0)
        .saturating_sub(before.counter_value("aqp_server_admitted_total", batch).unwrap_or(0));
    assert_eq!(
        admitted, answered,
        "shadow re-execution must never consume an admission slot"
    );
}
