//! Fairness accounting: the paper's equal-sample-space rule
//! (Section 5.2.3) must be enforceable from the public API.

use aqp::prelude::*;

fn view() -> Table {
    gen_tpch(&TpchConfig {
        scale_factor: 0.1,
        zipf_z: 2.0,
        seed: 31,
    })
    .unwrap()
    .denormalize("v")
    .unwrap()
}

#[test]
fn runtime_rows_scale_with_grouping_columns() {
    let view = view();
    let sampler =
        SmallGroupSampler::build(&view, SmallGroupConfig::with_rates(0.01, 0.5)).unwrap();

    // Pick grouping columns actually in S.
    let cols = sampler.sample_columns();
    let in_s: Vec<&String> = cols
        .iter()
        .filter(|c| !c.contains('+'))
        .take(3)
        .collect();
    assert!(in_s.len() >= 3, "need at least 3 sampled columns, have {cols:?}");

    let mut prev = 0usize;
    for g in 1..=3 {
        let mut b = Query::builder().count();
        for c in in_s.iter().take(g) {
            b = b.group_by((*c).clone());
        }
        let q = b.build().unwrap();
        let rows = sampler.runtime_rows(&q);
        assert!(
            rows > prev,
            "runtime rows must grow with grouping columns: g={g} rows={rows} prev={prev}"
        );
        prev = rows;
    }
}

#[test]
fn matched_uniform_budget_is_close() {
    // The uniform baseline at the matched rate touches approximately the
    // same number of rows as SGS does for the query.
    let view = view();
    let base = 0.01;
    let gamma = 0.5;
    let sampler =
        SmallGroupSampler::build(&view, SmallGroupConfig::with_rates(base, gamma)).unwrap();

    let cols = sampler.sample_columns();
    let in_s: Vec<&String> = cols.iter().filter(|c| !c.contains('+')).take(2).collect();
    let q = Query::builder()
        .count()
        .group_by(in_s[0].clone())
        .group_by(in_s[1].clone())
        .build()
        .unwrap();

    let sgs_rows = sampler.runtime_rows(&q);
    let uniform = UniformAqp::build(
        &view,
        UniformAqp::matched_rate(base, gamma, q.group_by.len()),
        3,
    )
    .unwrap();
    let uni_rows = uniform.runtime_rows(&q);

    // Small group tables hold *at most* t·N rows, so SGS can come in under
    // budget; the matched uniform sample is the upper envelope.
    assert!(
        sgs_rows as f64 <= uni_rows as f64 * 1.05,
        "SGS rows {sgs_rows} exceed matched uniform budget {uni_rows}"
    );
    assert!(
        sgs_rows as f64 >= uni_rows as f64 * 0.3,
        "budgets should be same order: {sgs_rows} vs {uni_rows}"
    );
}

#[test]
fn rows_scanned_matches_runtime_rows() {
    let view = view();
    let sampler =
        SmallGroupSampler::build(&view, SmallGroupConfig::with_rates(0.02, 0.5)).unwrap();
    let q = Query::builder()
        .count()
        .group_by("lineitem.shipmode")
        .group_by("part.brand")
        .build()
        .unwrap();
    let answer = sampler.answer(&q, 0.95).unwrap();
    assert_eq!(answer.rows_scanned, sampler.runtime_rows(&q));
}

#[test]
fn space_overhead_is_modest() {
    // Section 5.4.2: at a 1% base rate the total sample space is a few
    // percent of the database (the paper reports ≈6% for TPC-H).
    let view = view();
    let sampler =
        SmallGroupSampler::build(&view, SmallGroupConfig::with_rates(0.01, 0.5)).unwrap();
    let overhead = sampler.sample_bytes() as f64 / view.byte_size() as f64;
    assert!(
        overhead < 0.25,
        "sample space overhead {:.1}% too large",
        overhead * 100.0
    );
    // And reducing the base rate reduces the overhead (paper: 0.25% rate
    // ⇒ ≈1.8%).
    let small =
        SmallGroupSampler::build(&view, SmallGroupConfig::with_rates(0.0025, 0.5)).unwrap();
    assert!(small.sample_bytes() < sampler.sample_bytes());
}

#[test]
fn preprocessing_scales_linearly_not_exponentially() {
    // The motivation for small group sampling over congress: preprocessing
    // is linear in columns. Building on a view with ~30 columns must be
    // quick, and the catalog must cover (roughly) the eligible columns.
    let view = view();
    let start = std::time::Instant::now();
    let sampler =
        SmallGroupSampler::build(&view, SmallGroupConfig::with_rates(0.01, 0.5)).unwrap();
    let elapsed = start.elapsed();
    assert!(
        elapsed.as_secs() < 60,
        "preprocessing took {elapsed:?} — should be linear in columns"
    );
    let covered = sampler.catalog().num_tables()
        + sampler.catalog().dropped_tau.len()
        + sampler.catalog().dropped_no_small_groups.len();
    assert_eq!(covered, view.schema().len(), "every column considered once");
}
