//! Differential oracle for zone-map block pruning.
//!
//! The pruning contract is absolute: with pruning **on**, every query
//! answer — group order, every tally field, every estimate — is
//! *bit-identical* to the same query with pruning **off**, at every
//! thread count, in both kernel modes, at morsel sizes that do and do
//! not align with the 4096-row zone-map blocks. Pruning may only change
//! how much work the scan does, never what it answers.
//!
//! The table is *clustered* (sorted by the range column, dictionary
//! values per block) so that real `SkipAll`/`TakeAll` verdicts fire — a
//! second trace-backed test asserts pruning actually engaged, so these
//! oracles can never pass vacuously against a Scan-everything plan.

use aqp::prelude::*;
use aqp::query::AggState;

/// Zone-map block size (mirrors `aqp_storage::ZONE_BLOCK_ROWS`).
const BLOCK: usize = 4096;

/// Deterministic splitmix-style generator, as in `diff_parallel.rs`.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    let z = *state ^ (*state >> 31);
    z.wrapping_mul(0x9e3779b97f4a7c15) >> 17
}

/// Clustered fact table spanning several zone-map blocks plus a ragged
/// tail: `k` ascends (disjoint per-block ranges), `f` mirrors it with
/// noise, `cat` changes value per block, `nh` is ~90% NULL, and the two
/// measures carry NULLs of their own.
fn clustered_table(rows: usize, seed: u64) -> Table {
    let schema = SchemaBuilder::new()
        .field("k", DataType::Int64)
        .field("f", DataType::Float64)
        .field("cat", DataType::Utf8)
        .field("nh", DataType::Int64)
        .field("val", DataType::Float64)
        .field("amt", DataType::Float64)
        .build()
        .unwrap();
    let mut t = Table::empty("fact", schema);
    let mut s = seed.wrapping_mul(0x517cc1b727220a95).wrapping_add(1);
    let cats = ["aa", "bb", "cc", "dd"];
    for r in 0..rows {
        t.push_row(&[
            Value::Int64(r as i64),
            Value::Float64(r as f64 + (next(&mut s) % 7) as f64 / 8.0),
            cats[r / BLOCK % cats.len()].into(),
            if next(&mut s).is_multiple_of(10) {
                Value::Int64((next(&mut s) % 5) as i64)
            } else {
                Value::Null
            },
            if next(&mut s).is_multiple_of(8) {
                Value::Null
            } else {
                Value::Float64(0.01 + (next(&mut s) % 13) as f64 / 7.0)
            },
            Value::Float64((next(&mut s) % 101) as f64),
        ])
        .unwrap();
    }
    t
}

/// Predicates covering every compiled leaf the prune planner understands
/// (int/float compares, dict IN-lists, int IN-lists) plus combinators,
/// the NULL-heavy column, and an empty-match query.
fn query_grid(rows: usize) -> Vec<Query> {
    let b = BLOCK as i64;
    let build = |pred: Option<Expr>, group: &[&str]| {
        let mut q = Query::builder()
            .count()
            .sum("val")
            .sum("amt")
            .aggregate(AggExpr::avg("amt", "avg_amt"))
            .aggregate(AggExpr::min("val", "min_val"))
            .aggregate(AggExpr::max("amt", "max_amt"));
        for g in group {
            q = q.group_by(*g);
        }
        if let Some(p) = pred {
            q = q.filter(p);
        }
        q.build().unwrap()
    };
    vec![
        // Low selectivity: most blocks SkipAll, the first TakeAll.
        build(Some(Expr::cmp("k", CmpOp::Lt, b / 2)), &["cat"]),
        // High selectivity: every full block TakeAll.
        build(Some(Expr::cmp("k", CmpOp::Ge, 0i64)), &["cat"]),
        // Float range straddling a block boundary: mixed Scan blocks.
        build(Some(Expr::cmp("f", CmpOp::Le, 1.5 * b as f64)), &["cat"]),
        // Dict IN-list: per-block presence bitmaps decide.
        build(Some(Expr::in_set("cat", vec!["bb".into(), "dd".into()])), &["cat"]),
        // Int IN-list with one hit per distant block.
        build(
            Some(Expr::in_set("k", vec![Value::Int64(7), Value::Int64(b * 2 + 9)])),
            &[],
        ),
        // Combinator over two columns with a NOT.
        build(
            Some(Expr::Or(vec![
                Expr::And(vec![
                    Expr::cmp("k", CmpOp::Ge, b),
                    Expr::Not(Box::new(Expr::in_set("cat", vec!["cc".into()]))),
                ]),
                Expr::cmp("f", CmpOp::Lt, 64.0),
            ])),
            &["cat"],
        ),
        // NULL-heavy column: NULLs fail leaves, TakeAll must never fire.
        build(Some(Expr::cmp("nh", CmpOp::Ge, 0i64)), &["nh"]),
        // Empty match: ungrouped still answers one row; every block skips.
        build(Some(Expr::cmp("k", CmpOp::Gt, rows as i64 + 10)), &[]),
    ]
}

fn run(
    table: &Table,
    q: &Query,
    pruning: PruneMode,
    kernels: KernelMode,
    threads: usize,
    morsel_rows: usize,
) -> aqp::query::QueryOutput {
    let opts = ExecOptions {
        parallelism: threads,
        morsel_rows,
        kernels,
        pruning,
        ..ExecOptions::default()
    };
    aqp::query::execute(&DataSource::Wide(table), q, &opts).unwrap()
}

fn assert_bits(a: &AggState, b: &AggState, ctx: &str) {
    assert_eq!(a.rows, b.rows, "{ctx}: rows");
    for (x, y, field) in [
        (a.sum_w, b.sum_w, "sum_w"),
        (a.sum_wx, b.sum_wx, "sum_wx"),
        (a.sum_x, b.sum_x, "sum_x"),
        (a.sum_x_sq, b.sum_x_sq, "sum_x_sq"),
        (a.var_acc, b.var_acc, "var_acc"),
        (a.var_acc_w, b.var_acc_w, "var_acc_w"),
        (a.cov_acc, b.cov_acc, "cov_acc"),
        (a.min, b.min, "min"),
        (a.max, b.max, "max"),
    ] {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: {field} {x} vs {y}");
    }
}

fn assert_outputs_identical(
    a: &aqp::query::QueryOutput,
    b: &aqp::query::QueryOutput,
    ctx: &str,
) {
    assert_eq!(a.rows_scanned, b.rows_scanned, "{ctx}: rows_scanned");
    assert_eq!(a.num_groups(), b.num_groups(), "{ctx}: group count");
    for (ga, gb) in a.groups.iter().zip(&b.groups) {
        assert_eq!(ga.key, gb.key, "{ctx}: group order");
        for (sa, sb) in ga.aggs.iter().zip(&gb.aggs) {
            assert_bits(sa, sb, &format!("{ctx}, key {:?}", ga.key));
        }
    }
}

#[test]
fn pruned_answers_bit_identical_to_unpruned() {
    // 3 full blocks + a ragged tail; morsel sizes both block-aligned
    // (4096) and straddling block boundaries (1500).
    let rows = BLOCK * 3 + 777;
    let t = clustered_table(rows, 7);
    for (qi, q) in query_grid(rows).iter().enumerate() {
        for kernels in [KernelMode::Scalar, KernelMode::Vectorized] {
            for threads in [1, 2, 4, 8] {
                for morsel_rows in [BLOCK, 1500] {
                    let off = run(&t, q, PruneMode::Off, kernels, threads, morsel_rows);
                    let on = run(&t, q, PruneMode::On, kernels, threads, morsel_rows);
                    assert_outputs_identical(
                        &off,
                        &on,
                        &format!(
                            "query {qi} @ {threads} threads, {kernels:?}, morsel {morsel_rows}"
                        ),
                    );
                }
            }
        }
    }
}

#[test]
fn pruning_engages_and_reports_block_outcomes() {
    // The oracle above would pass vacuously if pruning never fired; this
    // pins the effect. Trace collection is control-thread-only, so the
    // profile is observable right here.
    let rows = BLOCK * 3;
    let t = clustered_table(rows, 11);
    let q = Query::builder()
        .count()
        .sum("amt")
        .filter(Expr::cmp("k", CmpOp::Lt, (BLOCK / 2) as i64))
        .build()
        .unwrap();

    assert!(aqp::obs::trace::begin("pruned scan"));
    let opts = ExecOptions {
        parallelism: 2,
        pruning: PruneMode::On,
        ..ExecOptions::default()
    };
    let out = aqp::query::execute(&DataSource::Wide(&t), &q, &opts).unwrap();
    let trace = aqp::obs::trace::finish().expect("trace open");
    assert_eq!(out.groups[0].aggs[0].rows, (BLOCK / 2) as u64);
    let op = &trace.operators[0];
    assert_eq!(
        op.blocks_skipped + op.blocks_taken + op.blocks_scanned,
        3,
        "every block accounted for: {op:?}"
    );
    assert_eq!(op.blocks_skipped, 2, "blocks 1 and 2 cannot match k < {}", BLOCK / 2);
    assert_eq!(op.rows_pruned, 2 * BLOCK as u64);

    // Pruning off: the same scan reports no block outcomes at all.
    assert!(aqp::obs::trace::begin("unpruned scan"));
    let opts = ExecOptions {
        parallelism: 2,
        pruning: PruneMode::Off,
        ..ExecOptions::default()
    };
    aqp::query::execute(&DataSource::Wide(&t), &q, &opts).unwrap();
    let trace = aqp::obs::trace::finish().expect("trace open");
    let op = &trace.operators[0];
    assert_eq!(
        (op.blocks_skipped, op.blocks_taken, op.blocks_scanned, op.rows_pruned),
        (0, 0, 0, 0),
        "pruning off reports zeros: {op:?}"
    );
}

#[test]
fn sampler_answers_bit_identical_across_prune_modes() {
    // End-to-end through the paper's UNION ALL rewrite: forcing the
    // process-wide prune mode must not move a bit of any estimate or
    // interval. The override is restored even on panic so concurrent
    // tests see the default.
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            aqp::query::set_prune_mode(PruneMode::Auto);
        }
    }
    let _restore = Restore;

    let t = clustered_table(BLOCK * 2, 17);
    let sampler = SmallGroupSampler::build(
        &t,
        SmallGroupConfig {
            seed: 5,
            ..SmallGroupConfig::with_rates(0.1, 0.5)
        },
    )
    .unwrap();
    let queries = [
        Query::builder().count().group_by("cat").build().unwrap(),
        Query::builder()
            .count()
            .sum("amt")
            .aggregate(AggExpr::avg("val", "avg_val"))
            .group_by("cat")
            .filter(Expr::cmp("k", CmpOp::Lt, BLOCK as i64))
            .build()
            .unwrap(),
    ];
    for (qi, q) in queries.iter().enumerate() {
        aqp::query::set_prune_mode(PruneMode::Off);
        let mut off = sampler.answer(q, 0.95).unwrap();
        off.sort_by_key();
        aqp::query::set_prune_mode(PruneMode::On);
        let mut on = sampler.answer(q, 0.95).unwrap();
        on.sort_by_key();
        assert_eq!(off.groups.len(), on.groups.len(), "query {qi}");
        for (a, b) in off.groups.iter().zip(&on.groups) {
            assert_eq!(a.key, b.key, "query {qi}");
            for (va, vb) in a.values.iter().zip(&b.values) {
                assert_eq!(
                    va.value().to_bits(),
                    vb.value().to_bits(),
                    "query {qi}: estimate for {:?}",
                    a.key
                );
                assert_eq!(va.ci.lo.to_bits(), vb.ci.lo.to_bits(), "query {qi}: ci.lo");
                assert_eq!(va.ci.hi.to_bits(), vb.ci.hi.to_bits(), "query {qi}: ci.hi");
            }
        }
    }
}
