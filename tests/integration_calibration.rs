//! End-to-end CI-coverage calibration: over a seeded 210-query workload
//! (COUNT, SUM and AVG), the observed 95 % confidence-interval coverage
//! of the uniform estimator must land in [90 %, 99 %] per aggregate
//! function — i.e. the intervals we report are neither fantasy-narrow
//! nor uselessly wide.
//!
//! Queries rotate across several independently-seeded samples so coverage
//! events are not all correlated through a single sample draw.

use aqp::prelude::*;
use aqp::query::DataSource;
use aqp::workload::{
    exact_answer, generate_queries, CoverageAudit, DatasetProfile, QueryGenConfig,
    WorkloadAggregate,
};
use rand::prelude::*;
use rand::rngs::StdRng;

/// 6 000-row view: three categorical columns of moderate cardinality and
/// one float measure with non-trivial within-group variance.
fn calibration_view() -> Table {
    let schema = SchemaBuilder::new()
        .field("cat", DataType::Utf8)
        .field("region", DataType::Utf8)
        .field("year", DataType::Int64)
        .field("rev", DataType::Float64)
        .build()
        .unwrap();
    let mut t = Table::empty("v", schema);
    let mut rng = StdRng::seed_from_u64(2003);
    for i in 0..6_000i64 {
        let rev: f64 = rng.random_range(1.0..100.0);
        t.push_row(&[
            format!("c{}", i % 8).into(),
            format!("r{}", i % 5).into(),
            (2000 + i % 4).into(),
            rev.into(),
        ])
        .unwrap();
    }
    t
}

#[test]
fn observed_coverage_matches_nominal_per_aggregate_function() {
    let view = calibration_view();
    let source = DataSource::Wide(&view);
    let profile = DatasetProfile::new(&view, &["rev"], &[], 100);
    // Several independently-seeded uniform samples; queries rotate across
    // them so one unlucky draw cannot sink every cell at once.
    let systems: Vec<UniformAqp> = (0..6)
        .map(|seed| UniformAqp::build(&view, 0.15, 100 + seed).unwrap())
        .collect();

    let mut audit = CoverageAudit::new();
    let mut total_queries = 0usize;
    for (batch, aggregate) in [
        WorkloadAggregate::Count,
        WorkloadAggregate::Sum,
        WorkloadAggregate::Avg,
    ]
    .into_iter()
    .enumerate()
    {
        let cfg = QueryGenConfig {
            grouping_columns: 1,
            aggregate,
            seed: 7 + batch as u64,
            ..QueryGenConfig::default()
        };
        for (i, query) in generate_queries(&profile, &cfg, 70).into_iter().enumerate() {
            let exact = exact_answer(&source, &query).unwrap();
            let system = &systems[i % systems.len()];
            let approx = system.answer(&query, 0.95).unwrap();
            audit.record(&query, &approx, &exact);
            total_queries += 1;
        }
    }
    assert!(total_queries >= 200, "need at least 200 audited queries");

    let report = audit.report(0.95);
    assert_eq!(report.queries as usize, total_queries);
    let labels: Vec<&str> = report
        .per_function
        .iter()
        .map(|b| b.label.as_str())
        .collect();
    assert_eq!(labels, ["COUNT", "SUM", "AVG"]);
    for bucket in &report.per_function {
        assert!(
            bucket.cells >= 50,
            "{}: too few auditable cells ({})",
            bucket.label,
            bucket.cells
        );
        let observed = bucket.observed();
        assert!(
            (0.90..=0.99).contains(&observed),
            "{}: observed 95% CI coverage {:.3} outside [0.90, 0.99] ({}/{} cells)",
            bucket.label,
            observed,
            bucket.covered,
            bucket.cells
        );
    }
    // The well-calibrated estimator must not trip the per-function
    // under-coverage flag. (Decile buckets are not asserted: a decile can
    // collapse onto one repeated group size, making its cells strongly
    // correlated through the shared sample draws, which the binomial
    // flagging interval does not model.)
    let flagged_functions: Vec<&str> = report
        .per_function
        .iter()
        .filter(|b| b.flagged(report.nominal))
        .map(|b| b.label.as_str())
        .collect();
    assert!(
        flagged_functions.is_empty(),
        "unexpected per-function under-coverage flags: {flagged_functions:?}"
    );
    // Decile bucketing partitions the auditable cells.
    let decile_cells: u64 = report.per_decile.iter().map(|b| b.cells).sum();
    assert_eq!(decile_cells, report.overall.cells);
}
