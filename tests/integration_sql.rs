//! SQL front-end end-to-end: text in, approximate answers out — the full
//! middleware path of the paper (SQL → logical plan → dynamic sample
//! selection → rewritten UNION ALL → merged answer).

use aqp::prelude::*;

fn setup() -> (Table, SmallGroupSampler) {
    let star = gen_tpch(&TpchConfig {
        scale_factor: 0.1,
        zipf_z: 2.0,
        seed: 77,
    })
    .unwrap();
    let view = star.denormalize("tpch").unwrap();
    let sampler = SmallGroupSampler::build(
        &view,
        SmallGroupConfig {
            base_rate: 1.0, // full rate: answers must be exact
            small_group_fraction: 0.02,
            ..Default::default()
        },
    )
    .unwrap();
    (view, sampler)
}

#[test]
fn sql_text_to_exact_matching_answers() {
    let (view, sampler) = setup();
    let statements = [
        "SELECT COUNT(*) FROM tpch",
        "SELECT lineitem.shipmode, COUNT(*) AS cnt FROM tpch GROUP BY lineitem.shipmode",
        "SELECT part.brand, SUM(lineitem.extendedprice) AS revenue FROM tpch \
         WHERE lineitem.quantity >= 3 GROUP BY part.brand",
        "SELECT customer.segment, supplier.region, COUNT(*) FROM tpch \
         WHERE lineitem.shipmode IN ('SHIP#000', 'SHIP#001') \
           AND lineitem.quantity BETWEEN 1 AND 40 \
         GROUP BY customer.segment, supplier.region",
        "SELECT orders.priority, AVG(lineitem.extendedprice) AS avg_price FROM tpch \
         GROUP BY orders.priority",
    ];
    for sql in statements {
        let parsed = parse_query(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let approx = sampler
            .answer(&parsed.query, 0.95)
            .unwrap_or_else(|e| panic!("{sql}: {e}"));
        let exact = exact_answer(&DataSource::Wide(&view), &parsed.query).unwrap();
        assert_eq!(
            exact.per_agg[0].len(),
            approx.num_groups(),
            "group counts for {sql}"
        );
        for g in &approx.groups {
            let truth = exact.per_agg[0][&g.key];
            assert!(
                (g.values[0].value() - truth).abs() / truth.abs().max(1.0) < 1e-9,
                "{sql}: group {:?} got {} expected {truth}",
                g.key,
                g.values[0].value()
            );
        }
    }
}

#[test]
fn sql_min_max_rejected_by_aqp_but_fine_exactly() {
    let (view, sampler) = setup();
    let parsed = parse_query("SELECT MAX(lineitem.extendedprice) AS m FROM tpch").unwrap();
    // The AQP layer refuses MIN/MAX (samples cannot bound them)…
    assert!(matches!(
        sampler.answer(&parsed.query, 0.95),
        Err(AqpError::Unsupported(_))
    ));
    // …while the exact executor handles them.
    let exact = exact_answer(&DataSource::Wide(&view), &parsed.query).unwrap();
    assert_eq!(exact.num_groups(), 1);
}

#[test]
fn sql_unknown_column_surfaces_cleanly() {
    let (_, sampler) = setup();
    let parsed = parse_query("SELECT nonexistent.col, COUNT(*) FROM tpch GROUP BY nonexistent.col")
        .unwrap();
    let err = sampler.answer(&parsed.query, 0.95).unwrap_err();
    assert!(err.to_string().contains("nonexistent.col"), "{err}");
}

#[test]
fn sql_errors_do_not_reach_execution() {
    for bad in [
        "SELEKT COUNT(*) FROM t",
        "SELECT COUNT(*) FROM",
        "SELECT COUNT(*) FROM t WHERE x ===",
        "SELECT a FROM t GROUP BY b",
    ] {
        assert!(parse_query(bad).is_err(), "{bad} should not parse");
    }
}

#[test]
fn sql_roundtrip_through_persistence() {
    // Save the family, reload it, and answer SQL identically — the full
    // offline-preprocess / online-query split of the architecture.
    let (_, sampler) = setup();
    let dir = std::env::temp_dir().join(format!("aqp_sql_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("family.aqps");
    sampler.save(&path).unwrap();
    let restored = SmallGroupSampler::load(&path).unwrap();

    let parsed = parse_query(
        "SELECT lineitem.returnflag, COUNT(*) AS c FROM tpch GROUP BY lineitem.returnflag",
    )
    .unwrap();
    let mut a = sampler.answer(&parsed.query, 0.95).unwrap();
    let mut b = restored.answer(&parsed.query, 0.95).unwrap();
    a.sort_by_key();
    b.sort_by_key();
    assert_eq!(a.num_groups(), b.num_groups());
    for (x, y) in a.groups.iter().zip(&b.groups) {
        assert_eq!(x.key, y.key);
        assert_eq!(x.values[0].value(), y.values[0].value());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
