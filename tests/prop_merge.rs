//! Property tests for partial-aggregate-state merging — the algebra the
//! morsel-driven executor relies on.
//!
//! Update streams use exactly-representable values (small integers for
//! `x`, small positive integers for `w`), so every tally field is an
//! integer far below 2^53 and float addition is *exact*. Under exact
//! arithmetic the merge must be associative and order-insensitive
//! bit-for-bit; any structural mistake in [`AggState::merge`] or
//! [`merge_group_maps`] (a missed field, a swapped min/max, a dropped
//! empty state) shows up as a hard bit mismatch. The executor's
//! determinism for *inexact* streams is covered separately by the fixed
//! morsel-order fold (`tests/diff_parallel.rs`).

use aqp::query::{merge_group_maps, AggState};
use proptest::prelude::*;
use std::collections::HashMap;

/// One update: measure value, weight, and whether the measure is NULL
/// (a NULL still counts the row for COUNT(*) but must not touch the
/// column tallies — mirroring the executor's per-aggregate behaviour).
type Update = (i64, u64, bool);

fn updates() -> impl Strategy<Value = Vec<Update>> {
    proptest::collection::vec(
        (-50i64..50, 1u64..5, 0u32..4).prop_map(|(x, w, n)| (x, w, n == 0)),
        0..120,
    )
}

/// Apply a slice of updates the way the executor's scan does: slot 0 is
/// COUNT(*) (always updates with x = 1), slot 1 is SUM/AVG over the
/// measure (skips NULLs entirely).
fn apply(updates: &[Update]) -> [AggState; 2] {
    let mut count = AggState::new();
    let mut sum = AggState::new();
    for &(x, w, is_null) in updates {
        count.update(1.0, w as f64);
        if !is_null {
            sum.update(x as f64, w as f64);
        }
    }
    [count, sum]
}

fn merged(parts: &[&[Update]]) -> [AggState; 2] {
    let mut acc = [AggState::new(), AggState::new()];
    for part in parts {
        let s = apply(part);
        acc[0].merge(&s[0]);
        acc[1].merge(&s[1]);
    }
    acc
}

/// Bitwise equality over every tally field (so `+0.0` vs `-0.0` or an
/// infinity mix-up in min/max cannot hide behind `==`).
fn states_equal(a: &AggState, b: &AggState) -> bool {
    a.rows == b.rows
        && a.sum_w.to_bits() == b.sum_w.to_bits()
        && a.sum_wx.to_bits() == b.sum_wx.to_bits()
        && a.sum_x.to_bits() == b.sum_x.to_bits()
        && a.sum_x_sq.to_bits() == b.sum_x_sq.to_bits()
        && a.var_acc.to_bits() == b.var_acc.to_bits()
        && a.var_acc_w.to_bits() == b.var_acc_w.to_bits()
        && a.min.to_bits() == b.min.to_bits()
        && a.max.to_bits() == b.max.to_bits()
}

/// Split `v` into chunks at positions derived from `cuts`.
fn split<'a>(v: &'a [Update], cuts: &[usize]) -> Vec<&'a [Update]> {
    let mut bounds: Vec<usize> = cuts.iter().map(|c| c % (v.len() + 1)).collect();
    bounds.push(0);
    bounds.push(v.len());
    bounds.sort_unstable();
    bounds.dedup();
    bounds.windows(2).map(|w| &v[w[0]..w[1]]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Splitting an update stream at arbitrary points and merging the
    /// partial states in order reproduces the sequential state exactly.
    #[test]
    fn split_merge_equals_sequential(
        ups in updates(),
        cuts in proptest::collection::vec(0usize..200, 0..6),
    ) {
        let sequential = apply(&ups);
        let parts = split(&ups, &cuts);
        let folded = merged(&parts);
        prop_assert!(states_equal(&sequential[0], &folded[0]), "COUNT slot");
        prop_assert!(states_equal(&sequential[1], &folded[1]), "SUM slot");
    }

    /// Merge is associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c), per field,
    /// bit-for-bit.
    #[test]
    fn merge_is_associative(
        a in updates(),
        b in updates(),
        c in updates(),
    ) {
        for slot in 0..2 {
            let (sa, sb, sc) = (apply(&a)[slot], apply(&b)[slot], apply(&c)[slot]);
            let mut left = sa;
            left.merge(&sb);
            left.merge(&sc);
            let mut right_tail = sb;
            right_tail.merge(&sc);
            let mut right = sa;
            right.merge(&right_tail);
            prop_assert!(states_equal(&left, &right), "slot {slot}");
        }
    }

    /// Merge order does not matter for exact streams: any rotation of the
    /// chunk list folds to the same state.
    #[test]
    fn merge_is_order_insensitive(
        ups in updates(),
        cuts in proptest::collection::vec(0usize..200, 0..5),
        rot in 0usize..8,
    ) {
        let parts = split(&ups, &cuts);
        let base = merged(&parts);
        let mut rotated = parts.clone();
        rotated.rotate_left(rot % parts.len().max(1));
        let other = merged(&rotated);
        prop_assert!(states_equal(&base[0], &other[0]));
        prop_assert!(states_equal(&base[1], &other[1]));
    }

    /// Empty morsels are identities: merging fresh states in anywhere —
    /// including as the accumulator's first operand, where min/max start
    /// at ±∞ — changes nothing.
    #[test]
    fn empty_states_are_identity(ups in updates(), n_empties in 1usize..4) {
        let full = apply(&ups);
        for (slot, state) in full.iter().enumerate() {
            // Empties before.
            let mut acc = AggState::new();
            for _ in 0..n_empties {
                acc.merge(&AggState::new());
            }
            acc.merge(state);
            prop_assert!(states_equal(&acc, state), "prefix empties, slot {slot}");
            // Empties after.
            let mut acc = *state;
            for _ in 0..n_empties {
                acc.merge(&AggState::new());
            }
            prop_assert!(states_equal(&acc, state), "suffix empties, slot {slot}");
        }
    }

    /// `merge_group_maps` over keyed partials equals a map built from the
    /// concatenated stream: groups union, shared keys merge per slot, and
    /// keys seen in only one partial carry over untouched.
    #[test]
    fn keyed_map_merge_matches_concatenation(
        keyed in proptest::collection::vec(
            (0u32..6, -50i64..50, 1u64..5, 0u32..4)
                .prop_map(|(k, x, w, n)| (k, (x, w, n == 0))),
            0..120,
        ),
        cut in 0usize..120,
    ) {
        let build = |items: &[(u32, Update)]| -> HashMap<u32, Vec<AggState>> {
            let mut m: HashMap<u32, Vec<AggState>> = HashMap::new();
            for &(k, (x, w, is_null)) in items {
                let states = m.entry(k).or_insert_with(|| vec![AggState::new(); 2]);
                states[0].update(1.0, w as f64);
                if !is_null {
                    states[1].update(x as f64, w as f64);
                }
            }
            m
        };
        let cut = cut % (keyed.len() + 1);
        let whole = build(&keyed);
        let mut folded = build(&keyed[..cut]);
        merge_group_maps(&mut folded, build(&keyed[cut..]));
        prop_assert_eq!(whole.len(), folded.len());
        for (k, want) in &whole {
            let got = folded.get(k).expect("missing group after merge");
            for slot in 0..2 {
                prop_assert!(states_equal(&want[slot], &got[slot]), "key {k}, slot {slot}");
            }
        }
    }
}
