//! Golden tests for normalized-plan cache keys.
//!
//! The semantic cache's correctness rests on the canonical key text
//! being (a) **byte-stable** across every semantics-free rewriting of a
//! query — whitespace, keyword case, literal formatting, predicate
//! commutation, aggregate aliasing — and (b) **injective** over
//! semantically different plans. The literals below pin the exact bytes:
//! any drift in the canonicalizer silently invalidates every cache entry
//! written by an older build, so a format change must be a conscious,
//! reviewed decision (bump the `plan1|` version tag when making one).
//!
//! A 1 000-query corpus additionally checks that both the key texts and
//! their fixed-width hash fingerprints are collision-free, so the hash
//! is safe to use in logs and metrics as a short synonym for the key.

use aqp::prelude::*;
use aqp::serving::{CacheConfig, SemanticCache};
use std::collections::HashSet;

fn key(sql: &str) -> String {
    parse_query(sql).unwrap().plan_key_text()
}

/// The pinned key-text format, byte for byte.
#[test]
fn golden_key_text_is_byte_stable() {
    assert_eq!(
        key("SELECT store.region, COUNT(*) AS c, SUM(sales.revenue) AS rev \
             FROM sales_view \
             WHERE sales.revenue > 100 AND store.country = 'US' \
             GROUP BY store.region"),
        "plan1|t10:sales_view|g[12:store.region]|a[count;sum(13:sales.revenue)]|w\
         and(cmp(13:sales.revenue,gt,i100);cmp(13:store.country,eq,s2:US))",
    );
    assert_eq!(key("SELECT COUNT(*) FROM v"), "plan1|t1:v|g[]|a[count]|w-");
}

/// Every semantics-free rewriting maps to the same bytes as the golden.
#[test]
fn rewritings_share_the_golden_bytes() {
    let golden = "plan1|t10:sales_view|g[12:store.region]|a[count;sum(13:sales.revenue)]|w\
                  and(cmp(13:sales.revenue,gt,i100);cmp(13:store.country,eq,s2:US))";
    for variant in [
        // Whitespace and keyword case.
        "select store.region,count(*) as c,sum(sales.revenue) as rev from sales_view \
         where sales.revenue>100 and store.country='US' group by store.region",
        // Literal formatting: 100 vs 100.0 vs 1e2.
        "SELECT store.region, COUNT(*) AS c, SUM(sales.revenue) AS rev FROM sales_view \
         WHERE sales.revenue > 100.0 AND store.country = 'US' GROUP BY store.region",
        "SELECT store.region, COUNT(*) AS c, SUM(sales.revenue) AS rev FROM sales_view \
         WHERE sales.revenue > 1e2 AND store.country = 'US' GROUP BY store.region",
        // Predicate commutation.
        "SELECT store.region, COUNT(*) AS c, SUM(sales.revenue) AS rev FROM sales_view \
         WHERE store.country = 'US' AND sales.revenue > 100 GROUP BY store.region",
        // Aggregate aliasing (and no alias at all).
        "SELECT store.region, COUNT(*) AS total, SUM(sales.revenue) AS money FROM sales_view \
         WHERE sales.revenue > 100 AND store.country = 'US' GROUP BY store.region",
        "SELECT store.region, COUNT(*), SUM(sales.revenue) FROM sales_view \
         WHERE sales.revenue > 100 AND store.country = 'US' GROUP BY store.region",
    ] {
        assert_eq!(key(variant), golden, "variant drifted: {variant}");
    }
}

/// Semantically different queries must never share bytes.
#[test]
fn semantic_differences_change_the_bytes() {
    let base = key("SELECT g, COUNT(*) FROM v WHERE a > 1 GROUP BY g");
    for (label, sql) in [
        ("table", "SELECT g, COUNT(*) FROM w WHERE a > 1 GROUP BY g"),
        ("literal", "SELECT g, COUNT(*) FROM v WHERE a > 2 GROUP BY g"),
        ("operator", "SELECT g, COUNT(*) FROM v WHERE a >= 1 GROUP BY g"),
        ("column", "SELECT g, COUNT(*) FROM v WHERE b > 1 GROUP BY g"),
        ("connective", "SELECT g, COUNT(*) FROM v WHERE a > 1 OR a > 1000 GROUP BY g"),
        ("group", "SELECT h, COUNT(*) FROM v WHERE a > 1 GROUP BY h"),
        ("aggregate", "SELECT g, SUM(x) FROM v WHERE a > 1 GROUP BY g"),
        ("agg column", "SELECT g, SUM(y) FROM v WHERE a > 1 GROUP BY g"),
        ("no predicate", "SELECT g, COUNT(*) FROM v GROUP BY g"),
        ("extra aggregate", "SELECT g, COUNT(*), SUM(x) FROM v WHERE a > 1 GROUP BY g"),
    ] {
        assert_ne!(key(sql), base, "{label} change must change the key");
    }
}

/// A string whose *content* mimics the length-prefix framing must not
/// produce the same bytes as the framing it mimics: prefixes make the
/// encoding injective even against adversarial identifiers.
#[test]
fn length_prefixes_resist_injection() {
    assert_ne!(
        key("SELECT COUNT(*) FROM v WHERE g = '2:US'"),
        key("SELECT COUNT(*) FROM v WHERE g = 'US'"),
    );
}

/// 1 000 distinct queries → 1 000 distinct key texts AND 1 000 distinct
/// hash fingerprints (no collisions in the short synonym either).
#[test]
fn thousand_query_corpus_is_collision_free() {
    let groups = ["store.region", "product.category", "customer.segment", "time.year"];
    let aggs = [
        "COUNT(*)",
        "SUM(sales.revenue)",
        "AVG(sales.units)",
        "COUNT(*), SUM(sales.cost)",
        "MIN(sales.revenue)",
    ];
    let cache = SemanticCache::new(CacheConfig::default());
    let mut texts = HashSet::new();
    let mut hashes = HashSet::new();
    let mut total = 0usize;
    for g in &groups {
        for a in &aggs {
            for lit in 0..50 {
                let sql = format!(
                    "SELECT {g}, {a} FROM v WHERE sales.revenue > {lit} GROUP BY {g}"
                );
                let parsed = parse_query(&sql).unwrap();
                let k = cache.key(&parsed.table, &parsed.query);
                assert!(texts.insert(k.text().to_string()), "text collision: {sql}");
                assert!(hashes.insert(k.hash()), "hash collision: {sql}");
                total += 1;
            }
        }
    }
    assert_eq!(total, 1000);
    assert_eq!(texts.len(), 1000);
    assert_eq!(hashes.len(), 1000);
}

/// The cache key embeds the epoch, so the same plan re-keys after an
/// invalidation — stale entries are unreachable by construction.
#[test]
fn epoch_prefix_re_keys_after_invalidate() {
    let cache = SemanticCache::new(CacheConfig::default());
    let parsed = parse_query("SELECT g, COUNT(*) FROM v GROUP BY g").unwrap();
    let before = cache.key(&parsed.table, &parsed.query);
    cache.invalidate();
    let after = cache.key(&parsed.table, &parsed.query);
    assert_ne!(before.text(), after.text());
    assert_ne!(before.hash(), after.hash());
}
