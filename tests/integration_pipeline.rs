//! End-to-end pipeline tests: generate → join → preprocess → query →
//! compare against exact answers, on both experimental databases.

use aqp::prelude::*;
use aqp::workload::harness::approx_map;
use aqp::workload::metrics::metric_report;

fn tpch_view(sf: f64, z: f64) -> Table {
    let star = gen_tpch(&TpchConfig {
        scale_factor: sf,
        zipf_z: z,
        seed: 21,
    })
    .expect("tpch generation");
    star.denormalize("tpch_view").expect("denormalize")
}

fn sales_view(rows: usize) -> Table {
    let star = gen_sales(&SalesConfig {
        fact_rows: rows,
        ..Default::default()
    })
    .expect("sales generation");
    star.denormalize("sales_view").expect("denormalize")
}

#[test]
fn tpch_full_pipeline_count_queries() {
    let view = tpch_view(0.1, 2.0);
    let sampler = SmallGroupSampler::build(&view, SmallGroupConfig::with_rates(0.02, 0.5))
        .expect("preprocessing");

    let profile = DatasetProfile::new(
        &view,
        aqp::datagen::tpch::TPCH_MEASURE_COLUMNS,
        aqp::datagen::tpch::TPCH_EXCLUDED_GROUPING,
        5000,
    );
    let queries = generate_queries(
        &profile,
        &QueryGenConfig {
            grouping_columns: 2,
            num_predicates: 1,
            aggregate: WorkloadAggregate::Count,
            seed: 5,
            ..Default::default()
        },
        10,
    );

    let src = DataSource::Wide(&view);
    for q in &queries {
        let exact = exact_answer(&src, q).expect("exact");
        let approx = sampler.answer(q, 0.95).expect("approx");
        let report = metric_report(&exact.per_agg[0], &approx_map(&approx, 0));
        // Sampling never invents groups.
        assert_eq!(report.spurious_groups, 0, "query {q}");
        // Groups flagged exact must match the exact answer exactly.
        for g in &approx.groups {
            if g.values[0].is_exact() {
                let truth = exact.per_agg[0].get(&g.key).copied().unwrap_or(f64::NAN);
                assert!(
                    (g.values[0].value() - truth).abs() < 1e-6,
                    "exact-flagged group {:?} disagrees: {} vs {truth} in {q}",
                    g.key,
                    g.values[0].value(),
                );
            }
        }
    }
}

#[test]
fn sales_full_pipeline_sum_queries() {
    let view = sales_view(20_000);
    let sampler = SmallGroupSampler::build(&view, SmallGroupConfig::with_rates(0.02, 0.5))
        .expect("preprocessing");

    let profile = DatasetProfile::new(
        &view,
        aqp::datagen::sales::SALES_MEASURE_COLUMNS,
        aqp::datagen::sales::SALES_EXCLUDED_GROUPING,
        5000,
    );
    let queries = generate_queries(
        &profile,
        &QueryGenConfig {
            grouping_columns: 1,
            num_predicates: 1,
            aggregate: WorkloadAggregate::Sum,
            seed: 6,
            ..Default::default()
        },
        8,
    );

    let src = DataSource::Wide(&view);
    let summary = evaluate_queries(&sampler, &src, &queries, 0.95).expect("evaluate");
    assert_eq!(summary.queries, 8);
    // Ballpark sanity: moderate-skew SUM at 2% should not be catastrophic.
    assert!(summary.rel_err < 1.5, "RelErr {}", summary.rel_err);
    assert!(summary.pct_groups < 60.0, "PctGroups {}", summary.pct_groups);
}

#[test]
fn tau_path_exercised_on_both_databases() {
    // Both generators deliberately carry near-unique columns; preprocessing
    // must drop them via the τ cut-off rather than build giant tables.
    // τ is lowered to match the micro-scale distinct counts (the paper's
    // τ = 5000 assumes full-scale tables).
    let tau = 300;
    let view = tpch_view(0.1, 1.5);
    let sampler = SmallGroupSampler::build(
        &view,
        SmallGroupConfig {
            tau,
            ..SmallGroupConfig::with_rates(0.01, 0.5)
        },
    )
    .unwrap();
    assert!(
        sampler
            .catalog()
            .dropped_tau
            .iter()
            .any(|c| c == "orders.clerk"),
        "clerk column must hit the tau cut-off; dropped: {:?}",
        sampler.catalog().dropped_tau
    );

    let view = sales_view(15_000);
    let sampler = SmallGroupSampler::build(
        &view,
        SmallGroupConfig {
            tau,
            ..SmallGroupConfig::with_rates(0.01, 0.5)
        },
    )
    .unwrap();
    let dropped = &sampler.catalog().dropped_tau;
    assert!(
        dropped.iter().any(|c| c == "customer.phone") || dropped.iter().any(|c| c == "sales.orderid"),
        "near-unique SALES columns must hit tau; dropped: {dropped:?}"
    );
}

#[test]
fn small_group_tables_respect_size_bound() {
    let view = tpch_view(0.1, 2.0);
    let t = 0.01;
    let sampler = SmallGroupSampler::build(
        &view,
        SmallGroupConfig {
            base_rate: 0.02,
            small_group_fraction: t,
            ..Default::default()
        },
    )
    .unwrap();
    let n = view.num_rows() as f64;
    for meta in &sampler.catalog().columns {
        assert!(
            meta.rows as f64 <= n * t + 1.0,
            "sg table {} has {} rows > N*t = {}",
            meta.name,
            meta.rows,
            n * t
        );
    }
    // Overall sample ≈ r·N.
    let overall = sampler.catalog().overall_rows as f64;
    assert!((overall - n * 0.02).abs() <= 1.0, "overall {} vs {}", overall, n * 0.02);
}

#[test]
fn multilevel_and_smallgroup_coexist() {
    let view = sales_view(10_000);
    let sg = SmallGroupSampler::build(&view, SmallGroupConfig::with_rates(0.02, 0.5)).unwrap();
    let ml = MultiLevelSampler::build(
        &view,
        MultiLevelConfig {
            base_rate: 0.02,
            levels: vec![(0.01, 1.0), (0.04, 0.25)],
            ..Default::default()
        },
    )
    .unwrap();
    let q = Query::builder()
        .count()
        .group_by("product.subcategory")
        .build()
        .unwrap();
    let exact = exact_answer(&DataSource::Wide(&view), &q).unwrap();
    for system in [&sg as &dyn AqpSystem, &ml] {
        let ans = system.answer(&q, 0.95).unwrap();
        let report = metric_report(&exact.per_agg[0], &approx_map(&ans, 0));
        assert_eq!(report.spurious_groups, 0, "{}", system.name());
        assert!(report.rel_err < 1.0, "{}: RelErr {}", system.name(), report.rel_err);
    }
}

#[test]
fn congress_and_outlier_run_end_to_end() {
    let view = tpch_view(0.05, 1.5);
    let budget = view.num_rows() / 50;
    let cols = vec![
        "lineitem.shipmode".to_owned(),
        "lineitem.returnflag".to_owned(),
        "part.brand".to_owned(),
    ];
    let congress = BasicCongress::build(&view, &cols, budget, 3).unwrap();
    let outlier =
        OutlierIndex::build(&view, "lineitem.extendedprice", budget / 2, 0.01, 3).unwrap();

    let q = Query::builder()
        .count()
        .sum("lineitem.extendedprice")
        .group_by("lineitem.shipmode")
        .build()
        .unwrap();
    let exact = exact_answer(&DataSource::Wide(&view), &q).unwrap();
    for system in [&congress as &dyn AqpSystem, &outlier] {
        let ans = system.answer(&q, 0.95).unwrap();
        let report = metric_report(&exact.per_agg[0], &approx_map(&ans, 0));
        assert_eq!(report.spurious_groups, 0, "{}", system.name());
        // The dominant group (shipmode is heavily skewed at z=1.5) must be
        // estimated within 50%.
        let (top_key, top_val) = exact.per_agg[0]
            .iter()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        let est = ans.group(top_key).expect("top group present").values[0].value();
        assert!(
            (est - top_val).abs() / top_val < 0.5,
            "{}: top group {est} vs {top_val}",
            system.name()
        );
    }
}
