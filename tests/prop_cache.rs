//! Property tests for CI-aware semantic-cache reuse soundness.
//!
//! The cache's admission rule is [`AnswerContract::satisfied_by`]; these
//! properties pin it, and the cache built on it, against an independent
//! re-derivation of the reuse conditions:
//!
//! 1. `satisfied_by` agrees with a from-first-principles oracle over
//!    random answers (partial flags, exactness mixes, CI widths,
//!    confidences) and random contracts (confidence + optional
//!    relative-error bound);
//! 2. a [`SemanticCache`] returns a `Hit` for a seeded key **iff** the
//!    stored answer satisfies the incoming contract — never for a looser
//!    answer, always for an equal-or-tighter one — and re-skins the hit
//!    to the incoming query's aliases while leaving estimates bitwise
//!    untouched;
//! 3. reuse never crosses plans (different predicate literal → different
//!    key → miss) nor epochs (`invalidate()` → miss), no matter how
//!    permissive the incoming contract is.

use aqp::prelude::*;
use aqp::serving::{CacheConfig, CacheDecision, SemanticCache};
use proptest::prelude::*;

/// Build a synthetic one-group answer with controlled CI geometry.
/// `halves[i]` is the half-width of value `i`; `None` marks it exact.
fn answer(values: &[(f64, Option<f64>)], confidence: f64, partial: bool) -> ApproxAnswer {
    let vals = values
        .iter()
        .map(|&(value, half)| ApproxValue {
            estimate: Estimate {
                value,
                variance: half.map_or(0.0, |h| h * h),
                exact: half.is_none(),
            },
            ci: ConfidenceInterval {
                lo: value - half.unwrap_or(0.0),
                hi: value + half.unwrap_or(0.0),
                confidence,
            },
        })
        .collect();
    ApproxAnswer {
        group_names: vec!["g".into()],
        agg_aliases: values.iter().enumerate().map(|(i, _)| format!("a{i}")).collect(),
        groups: vec![ApproxGroup { key: vec![Value::Utf8("k".into())], values: vals }],
        rows_scanned: 1,
        tier: ServingTier::Primary,
        partial,
    }
}

/// Independent restatement of the reuse rule, written as a plain
/// predicate over the drawn geometry rather than over the answer struct.
fn oracle(
    values: &[(f64, Option<f64>)],
    answer_conf: f64,
    partial: bool,
    contract_conf: f64,
    rel_bound: Option<f64>,
) -> bool {
    if partial {
        return false;
    }
    if values.iter().all(|(_, half)| half.is_none()) {
        return true; // all-exact answers are points at every confidence
    }
    if answer_conf + 1e-9 < contract_conf {
        return false;
    }
    match rel_bound {
        None => true,
        Some(b) => values
            .iter()
            .all(|&(v, half)| half.is_none_or(|h| h.is_finite() && h <= b * v.abs())),
    }
}

/// One drawn value: (estimate, exactness draw, half-width).
type RawValue = (f64, u32, f64);

fn values_strategy() -> impl Strategy<Value = Vec<RawValue>> {
    collection::vec((-1000.0f64..1000.0, 0u32..4, 0.0f64..150.0), 1..5)
}

fn geometry(raw: Vec<RawValue>) -> Vec<(f64, Option<f64>)> {
    // Draw 0 of 4 → exact value; otherwise approximate with the drawn
    // half-width (which may be 0.0 — a collapsed but non-exact CI).
    raw.iter().map(|&(v, e, h)| (v, (e != 0).then_some(h))).collect()
}

proptest! {
    /// `satisfied_by` ≡ the independent oracle on random geometry.
    fn satisfied_by_matches_first_principles_oracle(
        raw in values_strategy(),
        answer_conf in 0.5f64..0.999,
        partial_draw in 0u32..4,
        contract_conf in 0.5f64..0.999,
        bound_draw in 0u32..3,
        bound in 0.01f64..2.0,
    ) {
        let values = geometry(raw);
        let partial = partial_draw == 0;
        let rel_bound = (bound_draw != 0).then_some(bound);
        let a = answer(&values, answer_conf, partial);
        let contract = AnswerContract { confidence: contract_conf, max_rel_error: rel_bound };
        prop_assert_eq!(
            contract.satisfied_by(&a, answer_conf),
            oracle(&values, answer_conf, partial, contract_conf, rel_bound),
        );
    }

    /// A seeded cache hits iff the stored answer satisfies the incoming
    /// contract; hits re-skin aliases but keep estimates bitwise intact.
    fn cache_hit_iff_contract_satisfied(
        raw in values_strategy(),
        answer_conf in 0.5f64..0.999,
        partial_draw in 0u32..6,
        contract_conf in 0.5f64..0.999,
        bound_draw in 0u32..3,
        bound in 0.01f64..2.0,
    ) {
        let values = geometry(raw);
        let partial = partial_draw == 0;
        let rel_bound = (bound_draw != 0).then_some(bound);
        // The stored answer has as many aggregates as drawn values; the
        // incoming query's plan must match, only its aliases differ.
        let aggs: Vec<String> =
            (0..values.len()).map(|i| format!("COUNT(*) AS stored{i}")).collect();
        let seed_sql = format!("SELECT g, {} FROM v GROUP BY g", aggs.join(", "));
        let reuse_sql = seed_sql.replace("stored", "fresh");
        let seed = parse_query(&seed_sql).unwrap();
        let reuse = parse_query(&reuse_sql).unwrap();

        let cache = SemanticCache::new(CacheConfig::default());
        let stored = answer(&values, answer_conf, partial);
        let loose = AnswerContract::at_confidence(0.0);
        match cache.decide(&seed.table, &seed.query, &loose, None) {
            CacheDecision::Execute(guard) => guard.complete(&stored, answer_conf, true),
            _ => prop_assert!(false, "fresh cache must miss"),
        }

        let contract = AnswerContract { confidence: contract_conf, max_rel_error: rel_bound };
        let expect_hit = contract.satisfied_by(&stored, answer_conf);
        match cache.decide(&reuse.table, &reuse.query, &contract, None) {
            CacheDecision::Hit(served, served_conf) => {
                prop_assert!(expect_hit, "hit though contract unsatisfied");
                prop_assert_eq!(served_conf, answer_conf);
                let aliases: Vec<String> =
                    (0..values.len()).map(|i| format!("fresh{i}")).collect();
                prop_assert_eq!(&served.agg_aliases, &aliases, "hit must re-skin aliases");
                for (vs, &(v, _)) in served.groups[0].values.iter().zip(&values) {
                    prop_assert_eq!(vs.value().to_bits(), v.to_bits());
                }
            }
            CacheDecision::Execute(_) => {
                prop_assert!(!expect_hit, "miss though contract satisfied");
            }
            CacheDecision::Bypass => prop_assert!(false, "cache is enabled"),
        };
    }

    /// No reuse across differing plans or across an epoch bump, even
    /// under the loosest possible contract.
    fn no_reuse_across_plans_or_epochs(
        lit_a in 0i64..1000,
        lit_offset in 1i64..1000,
        value in -1000.0f64..1000.0,
        half in 0.0f64..150.0,
    ) {
        let lit_b = lit_a + lit_offset; // guaranteed distinct literal
        let sql =
            |lit: i64| format!("SELECT g, COUNT(*) AS c FROM v WHERE x > {lit} GROUP BY g");
        let qa = parse_query(&sql(lit_a)).unwrap();
        let qb = parse_query(&sql(lit_b)).unwrap();
        let loose = AnswerContract::at_confidence(0.0);

        let cache = SemanticCache::new(CacheConfig::default());
        let stored = answer(&[(value, Some(half))], 0.999, false);
        match cache.decide(&qa.table, &qa.query, &loose, None) {
            CacheDecision::Execute(guard) => guard.complete(&stored, 0.999, true),
            _ => prop_assert!(false, "fresh cache must miss"),
        }
        prop_assert!(
            matches!(cache.decide(&qa.table, &qa.query, &loose, None), CacheDecision::Hit(..)),
            "sanity: identical plan hits"
        );

        // Different predicate literal → different key → never a hit.
        prop_assert!(
            matches!(cache.decide(&qb.table, &qb.query, &loose, None), CacheDecision::Execute(_)),
            "distinct plans must not share an entry"
        );

        // Epoch bump → the seeded entry is unreachable.
        let epoch_before = cache.epoch();
        cache.invalidate();
        prop_assert!(cache.epoch() > epoch_before);
        prop_assert!(
            matches!(cache.decide(&qa.table, &qa.query, &loose, None), CacheDecision::Execute(_)),
            "invalidate must drop every prior entry"
        );
    }
}
